/**
 * @file
 * Cross-module integration tests: the full pipeline from a
 * Fermionic model through a SAT-optimal encoding to compiled,
 * simulated circuits.
 */

#include <gtest/gtest.h>

#include "circuit/pauli_compiler.h"
#include "core/annealing.h"
#include "core/descent_solver.h"
#include "encodings/encoding.h"
#include "encodings/linear.h"
#include "fermion/fock.h"
#include "fermion/models.h"
#include "sim/exact.h"
#include "sim/noise.h"

namespace fermihedral {
namespace {

core::DescentOptions
fastOptions()
{
    core::DescentOptions options;
    options.stepTimeoutSeconds = 10.0;
    options.totalTimeoutSeconds = 60.0;
    return options;
}

TEST(Integration, SatEncodingPreservesHubbardSpectrum)
{
    const auto h = fermion::fermiHubbard1D(2, 1.0, 4.0);
    core::DescentSolver solver(h.modes(), fastOptions());
    const auto result = solver.solve();
    ASSERT_TRUE(enc::validateEncoding(result.encoding).valid());

    const auto qubit_h = enc::mapToQubits(h, result.encoding);
    EXPECT_TRUE(qubit_h.isHermitian(1e-9));

    const std::size_t dim = std::size_t{1} << h.modes();
    const auto fock_eigs =
        sim::eigenvaluesHermitian(fermion::fockMatrix(h), dim);
    const auto qubit_eigs =
        sim::eigenvaluesHermitian(sim::denseMatrix(qubit_h), dim);
    for (std::size_t i = 0; i < dim; ++i)
        EXPECT_NEAR(fock_eigs[i], qubit_eigs[i], 1e-8);
}

TEST(Integration, SatEncodingLowersHubbardCircuitCost)
{
    // The Table 6 claim in miniature: the SAT encoding's compiled
    // circuit is no more expensive than Bravyi-Kitaev's.
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    core::DescentOptions options = fastOptions();
    options.totalTimeoutSeconds = 45.0;
    core::DescentSolver solver(h, options);
    const auto result = solver.solve();

    const auto bk_h = enc::mapToQubits(h, enc::bravyiKitaev(6));
    const auto sat_h = enc::mapToQubits(h, result.encoding);
    const auto bk_cost = circuit::compileTrotter(bk_h, 1.0).costs();
    const auto sat_cost =
        circuit::compileTrotter(sat_h, 1.0).costs();
    EXPECT_LE(sat_cost.totalGates, bk_cost.totalGates);
}

TEST(Integration, EigenstateStationaryUnderNoiselessEvolution)
{
    // Figure 8 sanity: starting from an eigenstate, the Trotter
    // circuit must return (numerically) the same energy when
    // noiseless.
    const auto h2 = fermion::h2Sto3gIntegrals().toHamiltonian();
    const auto encoding = enc::bravyiKitaev(4);
    auto qubit_h = enc::mapToQubits(h2, encoding);

    const auto eigen = sim::eigendecompose(qubit_h);
    for (std::size_t level : {0u, 1u, 3u}) {
        const auto initial = eigen.state(level);
        circuit::CompileOptions copts;
        copts.trotterSteps = 4;
        const auto circuit =
            circuit::compileTrotter(qubit_h, 1.0, copts);
        sim::StateVector evolved = initial;
        evolved.applyCircuit(circuit);
        // Energy is conserved up to Trotter error.
        EXPECT_NEAR(evolved.expectation(qubit_h),
                    eigen.values[level], 0.05)
            << "level " << level;
    }
}

TEST(Integration, NoiseDriftsEnergyUpFromGroundState)
{
    // The qualitative effect behind Figs. 8-10: with increasing
    // 2-qubit error the measured energy drifts away from E0
    // (upward, since E0 is the minimum).
    const auto h2 = fermion::h2Sto3gIntegrals().toHamiltonian();
    const auto qubit_h =
        enc::mapToQubits(h2, enc::jordanWigner(4));
    const auto eigen = sim::eigendecompose(qubit_h);
    const auto initial = eigen.state(0);
    const auto circuit = circuit::compileTrotter(qubit_h, 1.0);

    Rng rng(21);
    sim::NoiseModel low, high;
    low.twoQubitError = 1e-4;
    high.twoQubitError = 3e-2;
    const auto low_stats = sim::measureEnergy(
        circuit, initial, qubit_h, low, 150, rng);
    const auto high_stats = sim::measureEnergy(
        circuit, initial, qubit_h, high, 150, rng);
    EXPECT_GT(high_stats.mean, low_stats.mean);
    EXPECT_GE(high_stats.mean, eigen.values[0] - 0.05);
}

TEST(Integration, AnnealedPairingKeepsSpectrum)
{
    const auto h = fermion::fermiHubbard1D(3, 1.0, 4.0);
    const auto base = enc::bravyiKitaev(h.modes());
    const auto annealed = core::annealPairing(base, h);

    const std::size_t dim = std::size_t{1} << h.modes();
    const auto fock_eigs =
        sim::eigenvaluesHermitian(fermion::fockMatrix(h), dim);
    const auto qubit_h = enc::mapToQubits(h, annealed.encoding);
    const auto qubit_eigs =
        sim::eigenvaluesHermitian(sim::denseMatrix(qubit_h), dim);
    for (std::size_t i = 0; i < dim; ++i)
        EXPECT_NEAR(fock_eigs[i], qubit_eigs[i], 1e-8);
}

TEST(Integration, SatPlusAnnealingBeatsUnpairedOnSyk)
{
    Rng rng(17);
    const auto syk = fermion::sykModel(3, rng);
    core::DescentSolver solver(syk.modes(), fastOptions());
    const auto independent = solver.solve();

    core::AnnealingOptions aopts;
    aopts.seed = 99;
    const auto annealed =
        core::annealPairing(independent.encoding, syk, aopts);
    EXPECT_LE(annealed.finalCost,
              enc::hamiltonianPauliWeight(syk,
                                          independent.encoding));
}

TEST(Integration, WeightReductionTranslatesToGateReduction)
{
    // The core causal claim of the paper: lower Hamiltonian Pauli
    // weight gives fewer gates before optimization.
    const auto h = fermion::fermiHubbard1D(2, 1.0, 4.0);
    const auto jw = enc::jordanWigner(4);
    const auto bk = enc::bravyiKitaev(4);

    const auto jw_weight = enc::hamiltonianPauliWeight(h, jw);
    const auto bk_weight = enc::hamiltonianPauliWeight(h, bk);

    circuit::CompileOptions raw;
    raw.optimize = false;
    const auto jw_gates =
        circuit::compileTrotter(enc::mapToQubits(h, jw), 1.0, raw)
            .costs();
    const auto bk_gates =
        circuit::compileTrotter(enc::mapToQubits(h, bk), 1.0, raw)
            .costs();
    if (jw_weight < bk_weight) {
        EXPECT_LE(jw_gates.totalGates, bk_gates.totalGates);
    } else if (bk_weight < jw_weight) {
        EXPECT_LE(bk_gates.totalGates, jw_gates.totalGates);
    }
}

} // namespace
} // namespace fermihedral
