/**
 * @file
 * Tests for the shared streaming JSON writer: escaping, structure
 * bookkeeping (commas, nesting), number rendering and misuse
 * diagnostics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/json_writer.h"
#include "common/logging.h"

namespace fermihedral {
namespace {

TEST(JsonWriterEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(JsonWriter::escape("hello world"), "hello world");
    EXPECT_EQ(JsonWriter::escape(""), "");
}

TEST(JsonWriterEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(JsonWriter::escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
}

TEST(JsonWriterEscape, EscapesNamedControlCharacters)
{
    EXPECT_EQ(JsonWriter::escape("a\nb\tc\rd\be\ff"),
              "a\\nb\\tc\\rd\\be\\ff");
}

TEST(JsonWriterEscape, EscapesOtherControlCharactersAsUnicode)
{
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01\x1f", 2)),
              "\\u0001\\u001f");
}

TEST(JsonWriterEscape, PassesUtf8Through)
{
    // Multi-byte UTF-8 has every byte >= 0x80: none is escaped.
    EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, EmptyObjectAndArray)
{
    JsonWriter object;
    object.beginObject().endObject();
    EXPECT_EQ(object.take(), "{}");

    JsonWriter array;
    array.beginArray().endArray();
    EXPECT_EQ(array.take(), "[]");
}

TEST(JsonWriter, ObjectMembersAreCommaSeparated)
{
    JsonWriter json;
    json.beginObject()
        .member("a", 1)
        .member("b", "two")
        .member("c", true)
        .endObject();
    EXPECT_EQ(json.take(), "{\"a\":1,\"b\":\"two\",\"c\":true}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter json;
    json.beginObject();
    json.key("list").beginArray();
    json.value(1).value(2);
    json.beginObject().member("deep", false).endObject();
    json.endArray();
    json.key("empty").beginObject().endObject();
    json.endObject();
    EXPECT_EQ(json.take(),
              "{\"list\":[1,2,{\"deep\":false}],\"empty\":{}}");
}

TEST(JsonWriter, KeysAreEscaped)
{
    JsonWriter json;
    json.beginObject().member("we\"ird", 0).endObject();
    EXPECT_EQ(json.take(), "{\"we\\\"ird\":0}");
}

TEST(JsonWriter, IntegerRendering)
{
    JsonWriter json;
    json.beginArray()
        .value(std::numeric_limits<std::int64_t>::min())
        .value(std::numeric_limits<std::uint64_t>::max())
        .value(0)
        .endArray();
    EXPECT_EQ(json.take(),
              "[-9223372036854775808,18446744073709551615,0]");
}

TEST(JsonWriter, DoublesRoundTrip)
{
    JsonWriter json;
    json.beginArray().value(0.1).value(-2.5).value(1e300)
        .endArray();
    const std::string out = json.take();
    // Shortest-form rendering must parse back to the exact value.
    double a = 0, b = 0, c = 0;
    ASSERT_EQ(std::sscanf(out.c_str(), "[%lf,%lf,%lf]", &a, &b, &c),
              3)
        << out;
    EXPECT_EQ(a, 0.1);
    EXPECT_EQ(b, -2.5);
    EXPECT_EQ(c, 1e300);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter json;
    json.beginArray()
        .value(std::numeric_limits<double>::quiet_NaN())
        .value(std::numeric_limits<double>::infinity())
        .null()
        .endArray();
    EXPECT_EQ(json.take(), "[null,null,null]");
}

TEST(JsonWriter, RawValueSplicesVerbatim)
{
    JsonWriter json;
    json.beginObject().key("args").rawValue("{\"x\":1}")
        .endObject();
    EXPECT_EQ(json.take(), "{\"args\":{\"x\":1}}");
}

TEST(JsonWriter, TakeResetsForReuse)
{
    JsonWriter json;
    json.beginObject().endObject();
    EXPECT_EQ(json.take(), "{}");
    json.beginArray().value(1).endArray();
    EXPECT_EQ(json.take(), "[1]");
}

TEST(JsonWriter, MisuseIsAPanic)
{
    {
        JsonWriter json;
        json.beginObject();
        EXPECT_THROW(json.value(1), PanicError); // key required
    }
    {
        JsonWriter json;
        json.beginArray();
        EXPECT_THROW(json.key("k"), PanicError); // not an object
    }
    {
        JsonWriter json;
        json.beginObject();
        EXPECT_THROW(json.endArray(), PanicError); // unbalanced
    }
    {
        JsonWriter json;
        json.beginObject();
        EXPECT_THROW(json.take(), PanicError); // open scope
    }
}

} // namespace
} // namespace fermihedral
