/**
 * @file
 * Property tests for the GF(2) linear-encoding construction: ANY
 * invertible occupation-transform matrix must yield a valid,
 * vacuum-preserving Fermion-to-qubit encoding whose mapped
 * Hamiltonians keep the Fock spectrum. Jordan-Wigner, Bravyi-Kitaev
 * and Parity are three points of this family; this suite samples
 * random ones.
 */

#include <gtest/gtest.h>

#include "common/gf2.h"
#include "common/logging.h"
#include "common/rng.h"
#include "encodings/linear.h"
#include "fermion/fock.h"
#include "fermion/models.h"
#include "sim/exact.h"

namespace fermihedral::enc {
namespace {

BitMatrix
randomInvertible(std::size_t n, Rng &rng)
{
    BitMatrix m = BitMatrix::identity(n);
    for (std::size_t step = 0; step < 6 * n; ++step) {
        const auto a = rng.nextBelow(n);
        const auto b = rng.nextBelow(n);
        if (a != b)
            m.row(a) ^= m.row(b);
    }
    return m;
}

class LinearEncodingProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LinearEncodingProperty, RandomMatrixGivesValidEncoding)
{
    Rng rng(3000 + GetParam());
    const std::size_t modes = 2 + rng.nextBelow(5); // 2..6
    const auto encoding =
        linearEncoding(randomInvertible(modes, rng));
    const auto v = validateEncoding(encoding);
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    EXPECT_TRUE(v.algebraicIndependence) << v.detail;
    // The analytic phase fixing makes every linear encoding map the
    // Fock vacuum to |0...0> exactly.
    EXPECT_TRUE(v.vacuumPreserving) << v.detail;
}

TEST_P(LinearEncodingProperty, RandomMatrixPreservesSpectrum)
{
    Rng rng(4000 + GetParam());
    const std::size_t sites = 2;
    const auto h = fermion::fermiHubbard1D(sites, 1.0, 3.0);
    const auto encoding =
        linearEncoding(randomInvertible(h.modes(), rng));

    const auto qubit_h = mapToQubits(h, encoding);
    EXPECT_TRUE(qubit_h.isHermitian(1e-9));
    const std::size_t dim = std::size_t{1} << h.modes();
    const auto fock_eigs =
        sim::eigenvaluesHermitian(fermion::fockMatrix(h), dim);
    const auto qubit_eigs =
        sim::eigenvaluesHermitian(sim::denseMatrix(qubit_h), dim);
    for (std::size_t i = 0; i < dim; ++i)
        EXPECT_NEAR(fock_eigs[i], qubit_eigs[i], 1e-8);
}

TEST_P(LinearEncodingProperty, MajoranasSquareToIdentity)
{
    Rng rng(5000 + GetParam());
    const std::size_t modes = 2 + rng.nextBelow(6);
    const auto encoding =
        linearEncoding(randomInvertible(modes, rng));
    for (const auto &gamma : encoding.majoranas) {
        const auto square = gamma * gamma;
        EXPECT_TRUE(square.isIdentity());
        EXPECT_EQ(square.phaseExp(), 0) << gamma.label();
    }
}

TEST_P(LinearEncodingProperty, NumberOperatorMapsToDiagonal)
{
    // a^dag_j a_j = (I - gamma_2j gamma_2j+1 * i)/2 ... must map to
    // a real diagonal operator (only I/Z tensors) for any linear
    // encoding, since occupations are linear functions of the qubit
    // basis.
    Rng rng(6000 + GetParam());
    const std::size_t modes = 2 + rng.nextBelow(4);
    const auto encoding =
        linearEncoding(randomInvertible(modes, rng));
    fermion::FermionHamiltonian h(modes);
    for (std::uint32_t j = 0; j < modes; ++j) {
        h.addFermionTerm(1.0, {fermion::create(j),
                               fermion::annihilate(j)});
    }
    const auto mapped = mapToQubits(h, encoding);
    for (const auto &term : mapped.terms()) {
        EXPECT_EQ(term.string.xMask(), 0u)
            << "non-diagonal term " << term.string.label();
        EXPECT_NEAR(term.coefficient.imag(), 0.0, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearEncodingProperty,
                         ::testing::Range(0, 20));

TEST(LinearEncoding, RejectsSingularMatrix)
{
    BitMatrix singular(3, 3);
    singular.set(0, 0, true);
    singular.set(1, 0, true);
    EXPECT_THROW(linearEncoding(singular), PanicError);
}

TEST(LinearEncoding, ParityStoresPrefixSums)
{
    // Parity encoding: qubit q holds n_0 xor ... xor n_q; the
    // occupation flip of mode j therefore touches qubits j..N-1.
    const auto encoding = parity(4);
    for (std::size_t j = 0; j < 4; ++j) {
        const auto &gamma = encoding.majoranas[2 * j];
        for (std::size_t q = 0; q < 4; ++q) {
            const bool flips = (gamma.xMask() >> q) & 1;
            EXPECT_EQ(flips, q >= j) << "j=" << j << " q=" << q;
        }
    }
}

} // namespace
} // namespace fermihedral::enc
