/**
 * @file
 * End-to-end daemon tests: a real EncodingServer on a real
 * unix-domain socket, driven by the blocking EncodingClient. These
 * are the over-the-wire counterparts of the serving-layer suites:
 * daemon results must be bit-identical to in-process compilation,
 * deadlines and cancellation must propagate through COMPILE/CANCEL
 * frames into the running search, malformed requests must degrade
 * to typed error RESULTs on a healthy connection, and the sharded
 * persistent store must survive a daemon restart without
 * recomputing anything.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>

#include "api/model_spec.h"
#include "api/serialize.h"
#include "api/service.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"

namespace fermihedral::net {
namespace {

/** A temp dir per fixture; keeps unix paths short and unique. */
class NetDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
              ("fh-net-" +
               std::to_string(static_cast<unsigned>(::getpid())) +
               "-" +
               std::to_string(counter++));
        std::filesystem::create_directories(dir);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }

    std::string
    socketPath() const
    {
        return (dir / "d.sock").string();
    }

    std::filesystem::path dir;
    static int counter;
};

int NetDaemonTest::counter = 0;

/** An EncodingServer running its loop on a background thread. */
class RunningDaemon
{
  public:
    explicit RunningDaemon(const ServerOptions &options)
        : server(options), loop([this] { server.run(); })
    {
    }

    ~RunningDaemon()
    {
        server.stop();
        loop.join();
    }

    EncodingServer server;

  private:
    std::thread loop;
};

TEST_F(NetDaemonTest, ResultsAreBitIdenticalToInProcess)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());
    EXPECT_EQ(client.version(), kProtocolVersion);
    EXPECT_EQ(client.banner(), "fermihedrald");

    // Same spec through a fresh in-process service: the daemon adds
    // transport, not semantics, so the serialized results must match
    // byte for byte — closed-form and SAT strategies alike (the
    // search is deterministic at fixed budgets).
    api::CompilerService local;
    std::uint64_t id = 0;
    for (const char *strategy : {"bravyi-kitaev", "sat"}) {
        api::RequestSpec spec;
        spec.problem = "modes:3";
        spec.strategy = strategy;
        const CompileReply reply = client.compile(++id, spec);
        ASSERT_EQ(reply.status, api::ResultStatus::Ok) << strategy;

        std::string error;
        const auto request = api::tryBuildRequest(spec, &error);
        ASSERT_TRUE(request.has_value()) << strategy;
        const std::string expected =
            api::serializeResult(local.compile(*request));
        EXPECT_EQ(reply.resultText, expected) << strategy;
    }
}

TEST_F(NetDaemonTest, CancelInFlightOverTheSocket)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    // A search far too large to finish: 16 Majorana operators keep
    // the SAT descent busy for minutes, so the CANCEL lands while
    // the solve is genuinely in flight.
    api::RequestSpec spec;
    spec.problem = "modes:8";
    spec.strategy = "sat";
    spec.stepTimeoutSeconds = 120.0;
    spec.totalTimeoutSeconds = 120.0;
    client.sendCompile(1, spec);
    client.sendCancel(1);

    const auto frame = client.readMessage();
    ASSERT_TRUE(frame.has_value());
    const CompileReply reply = EncodingClient::decodeReply(*frame);
    EXPECT_EQ(reply.requestId, 1u);
    EXPECT_EQ(reply.status, api::ResultStatus::Cancelled);
    // Degradation ladder: a cancelled search still returns a valid
    // best-so-far encoding.
    const auto result = api::tryParseResult(reply.resultText);
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->encoding.numQubits(), 0u);
}

TEST_F(NetDaemonTest, DeadlinePropagatesThroughTheWire)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    api::RequestSpec spec;
    spec.problem = "modes:8";
    spec.strategy = "sat";
    spec.stepTimeoutSeconds = 120.0;
    spec.totalTimeoutSeconds = 120.0;
    spec.deadlineSeconds = 0.1;
    const CompileReply reply = client.compile(1, spec);
    EXPECT_EQ(reply.status, api::ResultStatus::DeadlineExceeded);
    const auto result = api::tryParseResult(reply.resultText);
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->encoding.numQubits(), 0u);
}

TEST_F(NetDaemonTest, ShardedStoreSurvivesRestartWithoutRecompute)
{
    const std::string store = (dir / "store").string();
    ServerOptions options;
    options.unixPath = socketPath();
    options.service.diskCachePath = store;
    options.service.diskCacheShards = 4;

    const std::vector<std::string> problems = {"modes:3", "modes:4"};
    {
        RunningDaemon daemon(options);
        EncodingClient client =
            EncodingClient::overUnix(socketPath());
        std::uint64_t id = 0;
        for (const std::string &problem : problems) {
            api::RequestSpec spec;
            spec.problem = problem;
            spec.strategy = "bravyi-kitaev";
            EXPECT_EQ(client.compile(++id, spec).status,
                      api::ResultStatus::Ok);
        }
        EXPECT_EQ(daemon.server.service().cacheStats().computes,
                  problems.size());
    }

    // Entries landed under two-hex-digit shard directories, and the
    // read-only audit sees them all as intact.
    std::size_t sharded_entries = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(store)) {
        if (!entry.is_regular_file())
            continue;
        EXPECT_EQ(entry.path().extension(), ".fhc");
        const std::string shard =
            entry.path().parent_path().filename().string();
        EXPECT_EQ(shard.size(), 2u) << entry.path();
        ++sharded_entries;
    }
    EXPECT_EQ(sharded_entries, problems.size());
    const api::StoreVerification audit =
        api::verifyEncodingStore(store);
    EXPECT_EQ(audit.entries, problems.size());
    EXPECT_EQ(audit.corrupted, 0u);
    EXPECT_GT(audit.bytes, 0u);

    // A restarted daemon on the same store serves everything from
    // disk: zero computes — the CI warm assertion, in miniature.
    {
        RunningDaemon daemon(options);
        EncodingClient client =
            EncodingClient::overUnix(socketPath());
        std::uint64_t id = 0;
        for (const std::string &problem : problems) {
            api::RequestSpec spec;
            spec.problem = problem;
            spec.strategy = "bravyi-kitaev";
            EXPECT_EQ(client.compile(++id, spec).status,
                      api::ResultStatus::Ok);
        }
        const api::CacheStats stats =
            daemon.server.service().cacheStats();
        EXPECT_EQ(stats.computes, 0u);
        EXPECT_EQ(stats.diskHits, problems.size());
    }
}

TEST_F(NetDaemonTest, MalformedRequestsDegradeToErrorResults)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    // Unparseable payload: RESULT status error, connection healthy.
    client.sendRaw(encodeFrame(
        {MessageType::Compile, 5, "not a request at all"}));
    auto frame = client.readMessage();
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(frame->type, MessageType::Result);
    CompileReply reply = EncodingClient::decodeReply(*frame);
    EXPECT_EQ(reply.requestId, 5u);
    EXPECT_EQ(reply.status, api::ResultStatus::Error);
    EXPECT_TRUE(reply.resultText.empty());

    // Unknown strategy: same shape, with the name in the message.
    api::RequestSpec spec;
    spec.problem = "modes:3";
    spec.strategy = "no-such-strategy";
    reply = client.compile(6, spec);
    EXPECT_EQ(reply.status, api::ResultStatus::Error);
    EXPECT_NE(reply.message.find("no-such-strategy"),
              std::string::npos);

    // Over-ceiling model: rejected as a request error too.
    spec.strategy = "bravyi-kitaev";
    spec.problem = "modes:200";
    reply = client.compile(7, spec);
    EXPECT_EQ(reply.status, api::ResultStatus::Error);

    // The connection survived all three: PING still answers.
    client.sendPing(8, "alive");
    frame = client.readMessage();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MessageType::Pong);
    EXPECT_EQ(frame->payload, "alive");
}

TEST_F(NetDaemonTest, TopologyRequestsRoundTripAndRejectCleanly)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    // routed-cost without a topology can never compile: the wire
    // parser rejects the spec and the daemon answers a typed Error
    // RESULT while the connection stays healthy.
    api::RequestSpec bad;
    bad.problem = "modes:3";
    bad.strategy = "sat";
    bad.objective = api::Objective::RoutedCost;
    CompileReply reply = client.compile(1, bad);
    EXPECT_EQ(reply.status, api::ResultStatus::Error);
    EXPECT_TRUE(reply.resultText.empty());

    // With the topology line present the same request compiles, and
    // the daemon result is bit-identical to in-process compilation.
    api::RequestSpec good = bad;
    good.topology = "linear:6";
    good.strategy = "pick-routed";
    reply = client.compile(2, good);
    ASSERT_EQ(reply.status, api::ResultStatus::Ok)
        << reply.message;
    std::string error;
    const auto request = api::tryBuildRequest(good, &error);
    ASSERT_TRUE(request.has_value()) << error;
    api::CompilerService local;
    EXPECT_EQ(reply.resultText,
              api::serializeResult(local.compile(*request)));

    // The rejection did not poison the connection.
    client.sendPing(3, "alive");
    const auto frame = client.readMessage();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MessageType::Pong);
    EXPECT_EQ(frame->payload, "alive");
}

TEST_F(NetDaemonTest, ProtocolViolationClosesWithErrorFrame)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    // Declared length below the 9-byte floor: the daemon answers
    // one ERROR frame and closes the connection.
    client.sendRaw(std::string("\x01\x00\x00\x00", 4));
    const auto frame = client.readMessage();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MessageType::Error);
    EXPECT_FALSE(client.readMessage().has_value());

    // The daemon itself is unharmed: a fresh connection works.
    EncodingClient fresh = EncodingClient::overUnix(socketPath());
    fresh.sendPing(1, "ok");
    const auto pong = fresh.readMessage();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->type, MessageType::Pong);
}

TEST_F(NetDaemonTest, MetricsDocumentFlowsOverTheWire)
{
    ServerOptions options;
    options.unixPath = socketPath();
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    api::RequestSpec spec;
    spec.problem = "modes:3";
    spec.strategy = "jordan-wigner";
    ASSERT_EQ(client.compile(1, spec).status,
              api::ResultStatus::Ok);

    const std::string json = client.metrics();
    EXPECT_NE(json.find("service.ok"), std::string::npos);
    EXPECT_NE(json.find("service.latency_seconds"),
              std::string::npos);
}

TEST_F(NetDaemonTest, PipelinedRequestsCompleteOutOfOrder)
{
    ServerOptions options;
    options.unixPath = socketPath();
    // Two pool threads, or the slow request would head-of-line
    // block the fast ones and there'd be no reordering to observe.
    options.service.threads = 2;
    RunningDaemon daemon(options);
    EncodingClient client = EncodingClient::overUnix(socketPath());

    // A slow SAT search pipelined before two instant closed-form
    // requests: the fast ones must come back first (completion
    // order), and the slow one is cancelled to finish the test.
    api::RequestSpec slow;
    slow.problem = "modes:8";
    slow.strategy = "sat";
    slow.stepTimeoutSeconds = 120.0;
    slow.totalTimeoutSeconds = 120.0;
    api::RequestSpec fast;
    fast.problem = "modes:3";
    fast.strategy = "bravyi-kitaev";

    client.sendCompile(1, slow);
    client.sendCompile(2, fast);
    client.sendCompile(3, fast);

    std::vector<std::uint64_t> order;
    for (int i = 0; i < 2; ++i) {
        const auto frame = client.readMessage();
        ASSERT_TRUE(frame.has_value());
        const CompileReply reply =
            EncodingClient::decodeReply(*frame);
        EXPECT_EQ(reply.status, api::ResultStatus::Ok);
        order.push_back(reply.requestId);
    }
    EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 3}));

    client.sendCancel(1);
    const auto frame = client.readMessage();
    ASSERT_TRUE(frame.has_value());
    const CompileReply reply = EncodingClient::decodeReply(*frame);
    EXPECT_EQ(reply.requestId, 1u);
    EXPECT_EQ(reply.status, api::ResultStatus::Cancelled);
}

} // namespace
} // namespace fermihedral::net
