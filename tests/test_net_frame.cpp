/**
 * @file
 * Wire-protocol conformance tests for the net/ layer. The byte
 * fixtures here are transcribed from the worked examples and
 * tables of docs/PROTOCOL.md — the document is normative and these
 * tests keep src/net/frame.h honest against it (including the
 * protocolVersion constant). The Connection tests drive the
 * IO-free per-connection state machine through partial reads,
 * short writes, pipelined out-of-order completion and every
 * protocol-error path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/serialize.h"
#include "net/connection.h"
#include "net/frame.h"

namespace fermihedral::net {
namespace {

std::string
bytes(std::initializer_list<unsigned> values)
{
    std::string out;
    for (unsigned v : values)
        out.push_back(static_cast<char>(v));
    return out;
}

/** Feed a full byte string and expect exactly one frame. */
Frame
decodeOne(const std::string &wire)
{
    FrameDecoder decoder;
    decoder.feed(wire);
    Frame frame;
    EXPECT_TRUE(decoder.next(frame)) << decoder.error();
    EXPECT_TRUE(decoder.error().empty()) << decoder.error();
    EXPECT_FALSE(decoder.next(frame));
    return frame;
}

// ---------------------------------------------------------------
// Constants: PROTOCOL.md's numbers are the contract.
// ---------------------------------------------------------------

TEST(NetFrame, ConstantsMatchProtocolDocument)
{
    // docs/PROTOCOL.md: protocolVersion = 1, minProtocolVersion = 1,
    // maxPayloadBytes = 8388608. A mismatch here means the document
    // and the code were not updated in the same commit.
    EXPECT_EQ(kProtocolVersion, 1u);
    EXPECT_EQ(kMinProtocolVersion, 1u);
    EXPECT_EQ(kMaxPayloadBytes, 8388608u);
    EXPECT_EQ(kHeaderBytes, 13u);
    EXPECT_EQ(kFrameOverheadBytes, 9u);
}

TEST(NetFrame, MessageTypeBytesMatchProtocolDocument)
{
    EXPECT_EQ(static_cast<unsigned>(MessageType::Hello), 0x01u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Welcome), 0x02u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Compile), 0x03u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Result), 0x04u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Cancel), 0x05u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Metrics), 0x06u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::MetricsResult),
              0x07u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Ping), 0x08u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Pong), 0x09u);
    EXPECT_EQ(static_cast<unsigned>(MessageType::Error), 0x7fu);
    for (unsigned known : {0x01u, 0x02u, 0x03u, 0x04u, 0x05u, 0x06u,
                           0x07u, 0x08u, 0x09u, 0x7fu})
        EXPECT_TRUE(
            isKnownMessageType(static_cast<std::uint8_t>(known)));
    EXPECT_FALSE(isKnownMessageType(0x00));
    EXPECT_FALSE(isKnownMessageType(0x0a));
    EXPECT_FALSE(isKnownMessageType(0xff));
}

TEST(NetFrame, StatusCodesMatchProtocolDocument)
{
    EXPECT_EQ(statusToCode(api::ResultStatus::Ok), 0u);
    EXPECT_EQ(statusToCode(api::ResultStatus::DeadlineExceeded), 1u);
    EXPECT_EQ(statusToCode(api::ResultStatus::Cancelled), 2u);
    EXPECT_EQ(statusToCode(api::ResultStatus::Shed), 3u);
    EXPECT_EQ(statusToCode(api::ResultStatus::Error), 4u);
    for (auto status :
         {api::ResultStatus::Ok, api::ResultStatus::DeadlineExceeded,
          api::ResultStatus::Cancelled, api::ResultStatus::Shed,
          api::ResultStatus::Error})
        EXPECT_EQ(statusFromCode(statusToCode(status)), status);
    EXPECT_FALSE(statusFromCode(5).has_value());
    EXPECT_FALSE(statusFromCode(0xff).has_value());
}

// ---------------------------------------------------------------
// Worked examples: the exact hex dumps of docs/PROTOCOL.md.
// ---------------------------------------------------------------

TEST(NetFrame, HelloFixture)
{
    const std::string wire =
        bytes({0x0d, 0x00, 0x00, 0x00,                         //
               0x01,                                           //
               0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
               0x01, 0x00, 0x00, 0x00});
    EXPECT_EQ(encodeFrame({MessageType::Hello, 0,
                           encodeHelloPayload(kProtocolVersion)}),
              wire);
    const Frame frame = decodeOne(wire);
    EXPECT_EQ(frame.type, MessageType::Hello);
    EXPECT_EQ(frame.requestId, 0u);
    EXPECT_EQ(decodeHelloPayload(frame.payload),
              std::optional<std::uint32_t>(1));
}

TEST(NetFrame, WelcomeFixture)
{
    const std::string wire =
        bytes({0x19, 0x00, 0x00, 0x00,                         //
               0x02,                                           //
               0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
               0x01, 0x00, 0x00, 0x00}) +
        "fermihedrald";
    EXPECT_EQ(encodeFrame({MessageType::Welcome, 0,
                           encodeWelcomePayload(1, "fermihedrald")}),
              wire);
    const Frame frame = decodeOne(wire);
    const auto welcome = decodeWelcomePayload(frame.payload);
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(welcome->version, 1u);
    EXPECT_EQ(welcome->banner, "fermihedrald");
}

TEST(NetFrame, PingFixture)
{
    const std::string wire =
        bytes({0x0b, 0x00, 0x00, 0x00,                         //
               0x08,                                           //
               0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
               0x68, 0x69});
    EXPECT_EQ(encodeFrame({MessageType::Ping, 7, "hi"}), wire);
    const Frame frame = decodeOne(wire);
    EXPECT_EQ(frame.type, MessageType::Ping);
    EXPECT_EQ(frame.requestId, 7u);
    EXPECT_EQ(frame.payload, "hi");
}

TEST(NetFrame, CancelFixture)
{
    const std::string wire =
        bytes({0x09, 0x00, 0x00, 0x00, //
               0x05,                   //
               0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
    EXPECT_EQ(encodeFrame({MessageType::Cancel, 3, ""}), wire);
    const Frame frame = decodeOne(wire);
    EXPECT_EQ(frame.type, MessageType::Cancel);
    EXPECT_EQ(frame.requestId, 3u);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(NetFrame, ResultShedFixture)
{
    const std::string wire =
        bytes({0x16, 0x00, 0x00, 0x00,                         //
               0x04,                                           //
               0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
               0x03,                                           //
               0x0a, 0x00}) +
        "queue full";
    EXPECT_EQ(encodeFrame(
                  {MessageType::Result, 2,
                   encodeResultPayload(api::ResultStatus::Shed,
                                       "queue full", "")}),
              wire);
    const Frame frame = decodeOne(wire);
    const auto result = decodeResultPayload(frame.payload);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, api::ResultStatus::Shed);
    EXPECT_EQ(result->message, "queue full");
    EXPECT_TRUE(result->resultText.empty());
}

TEST(NetFrame, CompileFixture)
{
    // The defaults-only request of the document's COMPILE example:
    // a 141-byte payload, so the length prefix reads 150 = 0x96.
    api::RequestSpec spec;
    spec.problem = "modes:3";
    const std::string payload = api::serializeRequestSpec(spec);
    EXPECT_EQ(payload,
              "fermihedral-request v1\n"
              "problem modes:3\n"
              "strategy sat\n"
              "objective auto\n"
              "alg 1\n"
              "vac 1\n"
              "step-timeout 0x1.ep+3\n"
              "total-timeout 0x1.68p+5\n"
              "deadline 0x0p+0\n");
    EXPECT_EQ(payload.size(), 141u);
    const std::string wire = encodeFrame(
        {MessageType::Compile, 1, payload});
    EXPECT_EQ(wire.substr(0, kHeaderBytes),
              bytes({0x96, 0x00, 0x00, 0x00, //
                     0x03,                   //
                     0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                     0x00}));
    const auto parsed = api::tryParseRequestSpec(payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->problem, "modes:3");
    EXPECT_EQ(parsed->strategy, "sat");
    EXPECT_DOUBLE_EQ(parsed->stepTimeoutSeconds, 15.0);
    EXPECT_DOUBLE_EQ(parsed->totalTimeoutSeconds, 45.0);
    EXPECT_DOUBLE_EQ(parsed->deadlineSeconds, 0.0);
}

TEST(NetFrame, CompileSpecTopologyLineRoundTrips)
{
    // The optional tenth line: emitted only when the spec carries a
    // topology, so the fixture above stays byte-identical.
    api::RequestSpec spec;
    spec.problem = "h2";
    spec.strategy = "pick-routed";
    spec.objective = api::Objective::RoutedCost;
    spec.topology = "grid:2x4";
    const std::string payload = api::serializeRequestSpec(spec);
    EXPECT_NE(payload.find("\ntopology grid:2x4\n"),
              std::string::npos);

    const auto parsed = api::tryParseRequestSpec(payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->topology, "grid:2x4");
    EXPECT_EQ(parsed->objective, api::Objective::RoutedCost);
    EXPECT_EQ(parsed->strategy, "pick-routed");
    EXPECT_EQ(api::serializeRequestSpec(*parsed), payload);
}

TEST(NetFrame, CompileSpecRejectsBadTopologyCombinations)
{
    api::RequestSpec spec;
    spec.problem = "h2";
    spec.topology = "grid:2x4";
    const std::string good = api::serializeRequestSpec(spec);
    ASSERT_TRUE(api::tryParseRequestSpec(good).has_value());

    // routed-cost with no topology line could never compile; the
    // wire parser rejects it instead of letting it fatal later.
    api::RequestSpec routed;
    routed.problem = "h2";
    routed.objective = api::Objective::RoutedCost;
    std::string no_topology = api::serializeRequestSpec(routed);
    EXPECT_EQ(no_topology.find("topology"), std::string::npos);
    EXPECT_FALSE(
        api::tryParseRequestSpec(no_topology).has_value());

    // A topology line that names no real topology is a parse
    // failure, not a deferred fatal.
    std::string bad = good;
    const auto pos = bad.find("grid:2x4");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 8, "gird:2x4");
    EXPECT_FALSE(api::tryParseRequestSpec(bad).has_value());

    // Trailing bytes after the topology line are corruption.
    EXPECT_FALSE(
        api::tryParseRequestSpec(good + "junk 1\n").has_value());
}

// ---------------------------------------------------------------
// Payload codecs: round trips and rejection.
// ---------------------------------------------------------------

TEST(NetFrame, HelloPayloadRejectsWrongSizes)
{
    EXPECT_FALSE(decodeHelloPayload("").has_value());
    EXPECT_FALSE(decodeHelloPayload("abc").has_value());
    EXPECT_FALSE(decodeHelloPayload("abcde").has_value());
    EXPECT_EQ(decodeHelloPayload(encodeHelloPayload(0x01020304)),
              std::optional<std::uint32_t>(0x01020304));
}

TEST(NetFrame, WelcomePayloadRejectsTruncation)
{
    EXPECT_FALSE(decodeWelcomePayload("").has_value());
    EXPECT_FALSE(decodeWelcomePayload("abc").has_value());
    const auto empty_banner = decodeWelcomePayload(
        encodeWelcomePayload(kProtocolVersion, ""));
    ASSERT_TRUE(empty_banner.has_value());
    EXPECT_TRUE(empty_banner->banner.empty());
}

TEST(NetFrame, ResultPayloadRoundTripsAndRejects)
{
    const std::string text = "fermihedral-result v1\nnot really\n";
    const std::string payload = encodeResultPayload(
        api::ResultStatus::DeadlineExceeded, "past deadline", text);
    const auto decoded = decodeResultPayload(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, api::ResultStatus::DeadlineExceeded);
    EXPECT_EQ(decoded->message, "past deadline");
    EXPECT_EQ(decoded->resultText, text);

    // Too short for the fixed header.
    EXPECT_FALSE(decodeResultPayload("").has_value());
    EXPECT_FALSE(decodeResultPayload(bytes({0x00, 0x01})).has_value());
    // Message length pointing past the end.
    EXPECT_FALSE(
        decodeResultPayload(bytes({0x00, 0x05, 0x00, 'h', 'i'}))
            .has_value());
    // Unknown status code.
    EXPECT_FALSE(
        decodeResultPayload(bytes({0x09, 0x00, 0x00})).has_value());
}

// ---------------------------------------------------------------
// FrameDecoder: incremental input and hostile streams.
// ---------------------------------------------------------------

TEST(NetFrame, DecoderReassemblesByteAtATime)
{
    const std::string wire =
        encodeFrame({MessageType::Ping, 42, "partial reads"}) +
        encodeFrame({MessageType::Cancel, 7, ""});
    FrameDecoder decoder;
    std::vector<Frame> frames;
    Frame frame;
    for (char byte : wire) {
        decoder.feed(std::string_view(&byte, 1));
        while (decoder.next(frame))
            frames.push_back(frame);
    }
    ASSERT_TRUE(decoder.error().empty()) << decoder.error();
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, MessageType::Ping);
    EXPECT_EQ(frames[0].requestId, 42u);
    EXPECT_EQ(frames[0].payload, "partial reads");
    EXPECT_EQ(frames[1].type, MessageType::Cancel);
    EXPECT_EQ(frames[1].requestId, 7u);
}

TEST(NetFrame, DecoderHandlesCoalescedFrames)
{
    // Several frames in one feed() — the TCP fast path.
    std::string wire;
    for (std::uint64_t id = 1; id <= 5; ++id)
        wire += encodeFrame(
            {MessageType::Ping, id, std::string(id, 'x')});
    FrameDecoder decoder;
    decoder.feed(wire);
    Frame frame;
    for (std::uint64_t id = 1; id <= 5; ++id) {
        ASSERT_TRUE(decoder.next(frame));
        EXPECT_EQ(frame.requestId, id);
        EXPECT_EQ(frame.payload.size(), id);
    }
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetFrame, DecoderRejectsOversizedDeclaredLength)
{
    // length = 9 + kMaxPayloadBytes + 1: poisoned from the header
    // alone, before any payload is buffered.
    const std::uint32_t length =
        static_cast<std::uint32_t>(kFrameOverheadBytes +
                                   kMaxPayloadBytes + 1);
    std::string header;
    for (int shift = 0; shift < 32; shift += 8)
        header.push_back(
            static_cast<char>((length >> shift) & 0xff));
    FrameDecoder decoder;
    decoder.feed(header);
    Frame frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_FALSE(decoder.error().empty());
    EXPECT_LT(decoder.buffered(), kMaxPayloadBytes);

    // A poisoned decoder stays poisoned.
    decoder.feed(encodeFrame({MessageType::Ping, 1, ""}));
    EXPECT_FALSE(decoder.next(frame));
}

TEST(NetFrame, DecoderRejectsUndersizedDeclaredLength)
{
    // length = 8 < 9: no room for type + request id.
    FrameDecoder decoder;
    decoder.feed(bytes({0x08, 0x00, 0x00, 0x00}));
    Frame frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_FALSE(decoder.error().empty());
}

TEST(NetFrame, DecoderRejectsUnknownType)
{
    FrameDecoder decoder;
    decoder.feed(bytes({0x09, 0x00, 0x00, 0x00, //
                        0x0a,                   // not a MessageType
                        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                        0x00}));
    Frame frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_FALSE(decoder.error().empty());
}

TEST(NetFrame, DecoderWaitsOnTruncatedFrame)
{
    // A valid header with only half the payload: not an error, just
    // not a frame yet.
    const std::string wire =
        encodeFrame({MessageType::Ping, 9, "0123456789"});
    FrameDecoder decoder;
    decoder.feed(wire.substr(0, wire.size() - 5));
    Frame frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_TRUE(decoder.error().empty());
    decoder.feed(wire.substr(wire.size() - 5));
    ASSERT_TRUE(decoder.next(frame));
    EXPECT_EQ(frame.payload, "0123456789");
}

// ---------------------------------------------------------------
// Connection: the per-peer protocol state machine.
// ---------------------------------------------------------------

/** Records handler calls; completes nothing on its own. */
struct RecordingHandler : ConnectionHandler
{
    std::vector<std::pair<std::uint64_t, std::string>> compiles;
    std::vector<std::uint64_t> cancels;

    void
    onCompile(std::uint64_t id, std::string request_text) override
    {
        compiles.emplace_back(id, std::move(request_text));
    }

    void
    onCancel(std::uint64_t id) override
    {
        cancels.push_back(id);
    }

    std::string
    onMetrics() override
    {
        return "{\"metrics\":true}";
    }
};

/** Drain and decode every queued output frame. */
std::vector<Frame>
drainOutput(Connection &connection, std::size_t write_chunk = 0)
{
    FrameDecoder decoder;
    while (connection.hasOutput()) {
        const std::string_view view = connection.pendingOutput();
        const std::size_t n = write_chunk == 0
                                  ? view.size()
                                  : std::min(write_chunk,
                                             view.size());
        decoder.feed(view.substr(0, n));
        connection.consumeOutput(n);
    }
    std::vector<Frame> frames;
    Frame frame;
    while (decoder.next(frame))
        frames.push_back(frame);
    EXPECT_TRUE(decoder.error().empty()) << decoder.error();
    return frames;
}

std::string
helloWire(std::uint32_t version = kProtocolVersion)
{
    return encodeFrame(
        {MessageType::Hello, 0, encodeHelloPayload(version)});
}

TEST(NetConnection, HandshakeThenPing)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    EXPECT_EQ(connection.negotiatedVersion(), kProtocolVersion);
    connection.feed(encodeFrame({MessageType::Ping, 5, "probe"}));

    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, MessageType::Welcome);
    const auto welcome = decodeWelcomePayload(frames[0].payload);
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(welcome->version, kProtocolVersion);
    EXPECT_EQ(welcome->banner, "testd");
    EXPECT_EQ(frames[1].type, MessageType::Pong);
    EXPECT_EQ(frames[1].requestId, 5u);
    EXPECT_EQ(frames[1].payload, "probe");
    EXPECT_FALSE(connection.shouldClose());
}

TEST(NetConnection, NewerClientNegotiatesDownToOurs)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire(kProtocolVersion + 7));
    EXPECT_EQ(connection.negotiatedVersion(), kProtocolVersion);
    EXPECT_FALSE(connection.shouldClose());
}

TEST(NetConnection, TooOldClientIsRejected)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire(0));
    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, MessageType::Error);
    EXPECT_TRUE(connection.shouldClose());
}

TEST(NetConnection, FirstFrameMustBeHello)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(encodeFrame({MessageType::Ping, 1, ""}));
    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, MessageType::Error);
    EXPECT_TRUE(connection.shouldClose());
}

TEST(NetConnection, MalformedHelloPayloadIsRejected)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(encodeFrame({MessageType::Hello, 0, "abc"}));
    EXPECT_TRUE(connection.shouldClose());
}

TEST(NetConnection, PipelinedOutOfOrderCompletion)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(encodeFrame({MessageType::Compile, 1, "one"}));
    connection.feed(encodeFrame({MessageType::Compile, 2, "two"}));
    connection.feed(encodeFrame({MessageType::Compile, 3, "three"}));
    ASSERT_EQ(handler.compiles.size(), 3u);
    EXPECT_EQ(connection.inFlightCount(), 3u);
    EXPECT_TRUE(connection.inFlight(2));

    // Completion order 2, 3, 1 — the output must preserve it.
    connection.completeCompile(2, api::ResultStatus::Ok, "", "r2");
    connection.completeCompile(3, api::ResultStatus::Ok, "", "r3");
    connection.completeCompile(1, api::ResultStatus::Ok, "", "r1");
    EXPECT_EQ(connection.inFlightCount(), 0u);

    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 4u); // WELCOME + 3 RESULTs
    EXPECT_EQ(frames[1].requestId, 2u);
    EXPECT_EQ(frames[2].requestId, 3u);
    EXPECT_EQ(frames[3].requestId, 1u);
    const auto r2 = decodeResultPayload(frames[1].payload);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->resultText, "r2");

    // A retired id is reusable without tripping the duplicate check.
    connection.feed(encodeFrame({MessageType::Compile, 2, "again"}));
    EXPECT_FALSE(connection.shouldClose());
    EXPECT_TRUE(connection.inFlight(2));
}

TEST(NetConnection, ShortWritesEmitIdenticalBytes)
{
    // The same traffic drained one byte at a time must decode to
    // the same frames — consumeOutput(n) with any n is legal.
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(encodeFrame({MessageType::Compile, 8, "spec"}));
    connection.completeCompile(8, api::ResultStatus::Ok, "",
                               "payload");
    const auto frames = drainOutput(connection, 1);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[1].type, MessageType::Result);
    EXPECT_EQ(frames[1].requestId, 8u);
}

TEST(NetConnection, DuplicateInFlightIdIsProtocolError)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(encodeFrame({MessageType::Compile, 4, "a"}));
    connection.feed(encodeFrame({MessageType::Compile, 4, "b"}));
    EXPECT_TRUE(connection.shouldClose());
    EXPECT_EQ(handler.compiles.size(), 1u);
    const auto frames = drainOutput(connection);
    ASSERT_FALSE(frames.empty());
    EXPECT_EQ(frames.back().type, MessageType::Error);
    EXPECT_EQ(frames.back().requestId, 4u);
}

TEST(NetConnection, CompileIdZeroIsProtocolError)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(encodeFrame({MessageType::Compile, 0, "a"}));
    EXPECT_TRUE(connection.shouldClose());
    EXPECT_TRUE(handler.compiles.empty());
}

TEST(NetConnection, CancelReachesHandlerOnlyWhileInFlight)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(encodeFrame({MessageType::Cancel, 9, ""}));
    EXPECT_TRUE(handler.cancels.empty()); // no-op, not an error
    EXPECT_FALSE(connection.shouldClose());

    connection.feed(encodeFrame({MessageType::Compile, 9, "work"}));
    connection.feed(encodeFrame({MessageType::Cancel, 9, ""}));
    ASSERT_EQ(handler.cancels.size(), 1u);
    EXPECT_EQ(handler.cancels[0], 9u);

    // The cancelled request still completes with exactly one RESULT.
    connection.completeCompile(9, api::ResultStatus::Cancelled,
                               "cancelled by client", "best");
    const auto frames = drainOutput(connection);
    const auto result = decodeResultPayload(frames.back().payload);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, api::ResultStatus::Cancelled);
    EXPECT_EQ(result->resultText, "best");
}

TEST(NetConnection, CompletingUnknownIdIsNoOp)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    drainOutput(connection);
    connection.completeCompile(123, api::ResultStatus::Ok, "", "x");
    EXPECT_FALSE(connection.hasOutput());
}

TEST(NetConnection, MetricsRoundTrip)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(encodeFrame({MessageType::Metrics, 6, ""}));
    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[1].type, MessageType::MetricsResult);
    EXPECT_EQ(frames[1].requestId, 6u);
    EXPECT_EQ(frames[1].payload, "{\"metrics\":true}");
}

TEST(NetConnection, ServerOnlyTypesAreProtocolErrors)
{
    for (MessageType type :
         {MessageType::Welcome, MessageType::Result,
          MessageType::MetricsResult, MessageType::Pong,
          MessageType::Error}) {
        RecordingHandler handler;
        Connection connection(handler, "testd");
        connection.feed(helloWire());
        connection.feed(encodeFrame({type, 1, ""}));
        EXPECT_TRUE(connection.shouldClose())
            << messageTypeName(type);
    }
}

TEST(NetConnection, RepeatedHelloIsProtocolError)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    connection.feed(helloWire());
    EXPECT_TRUE(connection.shouldClose());
}

TEST(NetConnection, MalformedStreamQueuesErrorAndCloses)
{
    RecordingHandler handler;
    Connection connection(handler, "testd");
    connection.feed(helloWire());
    drainOutput(connection);
    // A declared length below the 9-byte floor poisons the decoder;
    // the connection must surface it as an ERROR frame and close.
    connection.feed(bytes({0x01, 0x00, 0x00, 0x00}));
    EXPECT_TRUE(connection.shouldClose());
    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, MessageType::Error);

    // Feeding a closed connection does nothing.
    connection.feed(encodeFrame({MessageType::Ping, 1, ""}));
    EXPECT_FALSE(connection.hasOutput());
}

TEST(NetConnection, PartialReadsDriveTheStateMachine)
{
    // The whole session delivered one byte per feed() call.
    RecordingHandler handler;
    Connection connection(handler, "testd");
    const std::string session =
        helloWire() +
        encodeFrame({MessageType::Compile, 11, "spec-a"}) +
        encodeFrame({MessageType::Ping, 12, "p"});
    for (char byte : session)
        connection.feed(std::string_view(&byte, 1));
    ASSERT_EQ(handler.compiles.size(), 1u);
    EXPECT_EQ(handler.compiles[0].second, "spec-a");
    connection.completeCompile(11, api::ResultStatus::Ok, "", "ra");
    const auto frames = drainOutput(connection);
    ASSERT_EQ(frames.size(), 3u); // WELCOME, PONG, RESULT
    EXPECT_EQ(frames[1].type, MessageType::Pong);
    EXPECT_EQ(frames[2].type, MessageType::Result);
}

} // namespace
} // namespace fermihedral::net
