/**
 * @file
 * Tests for the Monte-Carlo noise model and measurement sampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/pauli_compiler.h"
#include "common/rng.h"
#include "sim/exact.h"
#include "sim/noise.h"

namespace fermihedral::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;

Circuit
ghzCircuit(std::size_t qubits)
{
    Circuit c(qubits);
    c.add(GateKind::H, 0);
    for (std::uint32_t q = 0; q + 1 < qubits; ++q)
        c.addCnot(q, q + 1);
    return c;
}

TEST(Noise, IdealTrajectoryIsDeterministic)
{
    Rng rng(1);
    const Circuit c = ghzCircuit(3);
    const StateVector initial(3);
    const auto out =
        runNoisyTrajectory(c, initial, NoiseModel::ideal(), rng);
    StateVector expected(3);
    expected.applyCircuit(c);
    EXPECT_NEAR(out.fidelity(expected), 1.0, 1e-12);
}

TEST(Noise, DepolarizingReducesAverageFidelity)
{
    const Circuit c = ghzCircuit(4);
    const StateVector initial(4);
    StateVector expected(4);
    expected.applyCircuit(c);

    NoiseModel noisy;
    noisy.singleQubitError = 0.02;
    noisy.twoQubitError = 0.05;

    Rng rng(2);
    double fidelity_sum = 0.0;
    const int trajectories = 300;
    for (int t = 0; t < trajectories; ++t) {
        const auto out = runNoisyTrajectory(c, initial, noisy, rng);
        fidelity_sum += out.fidelity(expected);
    }
    const double average = fidelity_sum / trajectories;
    EXPECT_LT(average, 0.98);
    EXPECT_GT(average, 0.5);
}

TEST(Noise, HigherErrorRatesHurtMore)
{
    const Circuit c = ghzCircuit(4);
    const StateVector initial(4);
    StateVector expected(4);
    expected.applyCircuit(c);

    auto average_fidelity = [&](double p2, std::uint64_t seed) {
        NoiseModel noise;
        noise.twoQubitError = p2;
        Rng rng(seed);
        double sum = 0.0;
        const int trajectories = 400;
        for (int t = 0; t < trajectories; ++t)
            sum += runNoisyTrajectory(c, initial, noise, rng)
                       .fidelity(expected);
        return sum / trajectories;
    };
    EXPECT_GT(average_fidelity(0.01, 3), average_fidelity(0.2, 4));
}

TEST(Noise, SampledEnergyIsUnbiased)
{
    // Energy of a GHZ state under a simple Hamiltonian: sampling
    // many one-shot estimates must converge to the exact value.
    const Circuit c = ghzCircuit(3);
    StateVector state(3);
    state.applyCircuit(c);

    pauli::PauliSum h(3);
    h.add(0.5, pauli::PauliString::fromLabel("ZZI"));
    h.add(-1.5, pauli::PauliString::fromLabel("IZZ"));
    h.add(0.25, pauli::PauliString::fromLabel("XXX"));
    h.add(2.0, pauli::PauliString::fromLabel("III"));
    h.simplify();
    const double exact = state.expectation(h);

    Rng rng(5);
    double sum = 0.0;
    const int shots = 4000;
    for (int s = 0; s < shots; ++s)
        sum += sampleEnergy(state, h, NoiseModel::ideal(), rng);
    EXPECT_NEAR(sum / shots, exact, 0.05);
}

TEST(Noise, ReadoutErrorBiasesTowardZero)
{
    // <Z> of |0> is 1; readout flips shrink it to 1 - 2 p.
    StateVector state(1);
    pauli::PauliSum h(1);
    h.add(1.0, pauli::PauliString::fromLabel("Z"));
    h.simplify();

    NoiseModel noise;
    noise.readoutError = 0.2;
    Rng rng(6);
    double sum = 0.0;
    const int shots = 20000;
    for (int s = 0; s < shots; ++s)
        sum += sampleEnergy(state, h, noise, rng);
    EXPECT_NEAR(sum / shots, 1.0 - 2.0 * 0.2, 0.02);
}

TEST(Noise, MeasureEnergyStatisticsShape)
{
    const Circuit c = ghzCircuit(2);
    const StateVector initial(2);
    pauli::PauliSum h(2);
    h.add(1.0, pauli::PauliString::fromLabel("ZZ"));
    h.simplify();

    Rng rng(7);
    const auto stats = measureEnergy(c, initial, h,
                                     NoiseModel::ideal(), 500, rng);
    EXPECT_EQ(stats.shots, 500u);
    // GHZ: ZZ is +1 always.
    EXPECT_NEAR(stats.mean, 1.0, 1e-9);
    EXPECT_NEAR(stats.standardDeviation, 0.0, 1e-9);
}

TEST(Noise, NoisyMeasurementIncreasesVariance)
{
    const Circuit c = ghzCircuit(3);
    const StateVector initial(3);
    pauli::PauliSum h(3);
    h.add(1.0, pauli::PauliString::fromLabel("ZZI"));
    h.add(1.0, pauli::PauliString::fromLabel("XXX"));
    h.simplify();

    Rng rng_a(8), rng_b(9);
    const auto clean = measureEnergy(c, initial, h,
                                     NoiseModel::ideal(), 400,
                                     rng_a);
    NoiseModel noisy = NoiseModel::ionqAria1();
    const auto degraded =
        measureEnergy(c, initial, h, noisy, 400, rng_b);
    EXPECT_GE(degraded.standardDeviation,
              clean.standardDeviation - 1e-9);
    EXPECT_LT(degraded.mean, clean.mean + 1e-9);
}

TEST(Noise, MeasurementPlanPartitionsTerms)
{
    pauli::PauliSum h(3);
    h.add(0.5, pauli::PauliString::fromLabel("ZZI"));
    h.add(-1.5, pauli::PauliString::fromLabel("IZZ"));
    h.add(0.25, pauli::PauliString::fromLabel("XXX"));
    h.add(2.0, pauli::PauliString::fromLabel("III"));
    h.simplify();

    const MeasurementPlan plan(h);
    EXPECT_EQ(plan.numQubits(), 3u);
    EXPECT_NEAR(plan.identityEnergy(), 2.0, 1e-12);
    // ZZI and IZZ are qubit-wise commuting (one Z family); XXX is
    // its own family.
    EXPECT_EQ(plan.groups().size(), 2u);
    std::size_t measured_terms = 0;
    for (const auto &group : plan.groups()) {
        for (const auto &term : group.terms) {
            EXPECT_NE(term.supportMask, 0u);
            ++measured_terms;
        }
    }
    EXPECT_EQ(measured_terms, 3u);
}

TEST(Noise, GroupedSampleEnergyMatchesUngroupedMean)
{
    // Same estimator target: grouped and ungrouped one-shot
    // estimates must agree in the mean within shot noise.
    const Circuit c = ghzCircuit(3);
    StateVector state(3);
    state.applyCircuit(c);

    pauli::PauliSum h(3);
    h.add(0.5, pauli::PauliString::fromLabel("ZZI"));
    h.add(-1.5, pauli::PauliString::fromLabel("IZZ"));
    h.add(0.25, pauli::PauliString::fromLabel("XXX"));
    h.add(0.75, pauli::PauliString::fromLabel("XYY"));
    h.add(2.0, pauli::PauliString::fromLabel("III"));
    h.simplify();
    const double exact = state.expectation(h);
    const MeasurementPlan plan(h);

    Rng rng_grouped(15), rng_ungrouped(16);
    double grouped = 0.0, ungrouped = 0.0;
    const int shots = 6000;
    for (int s = 0; s < shots; ++s) {
        grouped += sampleEnergy(state, plan, NoiseModel::ideal(),
                                rng_grouped);
        ungrouped += sampleEnergy(state, h, NoiseModel::ideal(),
                                  rng_ungrouped);
    }
    grouped /= shots;
    ungrouped /= shots;
    EXPECT_NEAR(grouped, exact, 0.06);
    EXPECT_NEAR(ungrouped, exact, 0.06);
    EXPECT_NEAR(grouped, ungrouped, 0.1);
}

TEST(Noise, GroupedReadoutErrorBiasesTowardZero)
{
    // <Z> of |0> with readout flips shrinks to 1 - 2p through the
    // grouped path just as through the ungrouped one.
    StateVector state(1);
    pauli::PauliSum h(1);
    h.add(1.0, pauli::PauliString::fromLabel("Z"));
    h.simplify();
    const MeasurementPlan plan(h);

    NoiseModel noise;
    noise.readoutError = 0.2;
    Rng rng(17);
    double sum = 0.0;
    const int shots = 20000;
    for (int s = 0; s < shots; ++s)
        sum += sampleEnergy(state, plan, noise, rng);
    EXPECT_NEAR(sum / shots, 1.0 - 2.0 * 0.2, 0.02);
}

TEST(Noise, MeasureEnergyReportsElapsedTime)
{
    const Circuit c = ghzCircuit(2);
    const StateVector initial(2);
    pauli::PauliSum h(2);
    h.add(1.0, pauli::PauliString::fromLabel("ZZ"));
    h.simplify();
    Rng rng(18);
    const auto stats = measureEnergy(c, initial, h,
                                     NoiseModel::ideal(), 100, rng);
    EXPECT_GT(stats.elapsedSeconds, 0.0);
    EXPECT_EQ(stats.shots, 100u);
}

TEST(Noise, IonqPresetMatchesPaperNumbers)
{
    const auto profile = NoiseModel::ionqAria1();
    EXPECT_NEAR(profile.singleQubitError, 1e-4, 1e-9);
    EXPECT_NEAR(profile.twoQubitError, 0.0109, 1e-9);
    EXPECT_NEAR(profile.readoutError, 0.0118, 1e-9);
}

} // namespace
} // namespace fermihedral::sim
