/**
 * @file
 * Tests for the thread pool and the parallel trajectory engine:
 * forEach() must cover every index exactly once for any thread
 * count, and measureEnergy() must be bit-identical for 1..N
 * threads on a fixed seed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "circuit/pauli_compiler.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "encodings/linear.h"
#include "fermion/models.h"
#include "sim/exact.h"
#include "sim/noise.h"

namespace fermihedral {
namespace {

TEST(ThreadPool, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(),
              ThreadPool::hardwareConcurrency());
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        const std::size_t count = 10000;
        std::vector<std::atomic<int>> hits(count);
        pool.forEach(count, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, MoreThreadsThanTasks)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.forEach(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyLoopReturnsImmediately)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.forEach(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PoolIsReusableAcrossLoops)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.forEach(100, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 50 * 100);
}

/** Small but non-trivial noisy workload: H2 under Bravyi-Kitaev. */
struct H2Workload
{
    pauli::PauliSum hamiltonian;
    circuit::Circuit circuit;
    sim::StateVector initial;

    H2Workload()
        : hamiltonian(enc::mapToQubits(
              fermion::h2Sto3gIntegrals().toHamiltonian(),
              enc::bravyiKitaev(4))),
          circuit(circuit::compileTrotter(hamiltonian, 1.0)),
          initial(sim::eigendecompose(hamiltonian).state(0))
    {
    }
};

TEST(ParallelMeasure, BitIdenticalAcrossThreadCounts)
{
    const H2Workload w;
    sim::NoiseModel noise;
    noise.singleQubitError = 1e-3;
    noise.twoQubitError = 1e-2;
    noise.readoutError = 1e-2;

    Rng rng1(424242);
    const auto serial = sim::measureEnergy(
        w.circuit, w.initial, w.hamiltonian, noise, 400, rng1, 1);
    for (const std::size_t threads : {2u, 4u, 8u}) {
        Rng rngN(424242);
        const auto parallel = sim::measureEnergy(
            w.circuit, w.initial, w.hamiltonian, noise, 400, rngN,
            threads);
        // Bit-identical, not merely close: same forked stream per
        // shot and an order-fixed reduction.
        EXPECT_EQ(parallel.mean, serial.mean)
            << threads << " threads";
        EXPECT_EQ(parallel.standardDeviation,
                  serial.standardDeviation)
            << threads << " threads";
    }
}

TEST(ParallelMeasure, IdealFastPathBitIdenticalAcrossThreads)
{
    const H2Workload w;
    // Zero gate error but nonzero readout: exercises the
    // SampleTable fast path including its readout draws.
    sim::NoiseModel noise;
    noise.readoutError = 5e-3;

    Rng rng1(99);
    const auto serial = sim::measureEnergy(
        w.circuit, w.initial, w.hamiltonian, noise, 300, rng1, 1);
    Rng rng8(99);
    const auto parallel = sim::measureEnergy(
        w.circuit, w.initial, w.hamiltonian, noise, 300, rng8, 8);
    EXPECT_EQ(parallel.mean, serial.mean);
    EXPECT_EQ(parallel.standardDeviation, serial.standardDeviation);
}

TEST(ParallelMeasure, CallerRngAdvancesOncePerCall)
{
    // Two successive experiments from one Rng must differ (the
    // caller's generator advances), and reseeding must reproduce
    // the first experiment exactly.
    const H2Workload w;
    sim::NoiseModel noise;
    noise.twoQubitError = 1e-2;

    Rng rng(7);
    const auto first = sim::measureEnergy(
        w.circuit, w.initial, w.hamiltonian, noise, 200, rng, 2);
    const auto second = sim::measureEnergy(
        w.circuit, w.initial, w.hamiltonian, noise, 200, rng, 2);
    EXPECT_NE(first.mean, second.mean);

    Rng reseeded(7);
    const auto repeat = sim::measureEnergy(
        w.circuit, w.initial, w.hamiltonian, noise, 200, reseeded,
        2);
    EXPECT_EQ(repeat.mean, first.mean);
}

} // namespace
} // namespace fermihedral
