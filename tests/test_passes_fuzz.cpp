/**
 * @file
 * Fuzz tests: the peephole optimizer must preserve the circuit's
 * action (up to global phase, which the passes never introduce) on
 * random circuits, and the SAT encoding model must stay valid
 * across constraint configurations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passes.h"
#include "common/rng.h"
#include "core/encoding_model.h"
#include "sat/solver.h"
#include "encodings/encoding.h"
#include "sim/statevector.h"

namespace fermihedral {
namespace {

circuit::Circuit
randomCircuit(std::size_t qubits, std::size_t gates, Rng &rng)
{
    using circuit::GateKind;
    circuit::Circuit c(qubits);
    for (std::size_t i = 0; i < gates; ++i) {
        const auto q =
            static_cast<std::uint32_t>(rng.nextBelow(qubits));
        switch (rng.nextBelow(8)) {
          case 0: c.add(GateKind::H, q); break;
          case 1: c.add(GateKind::X, q); break;
          case 2: c.add(GateKind::Z, q); break;
          case 3: c.add(GateKind::S, q); break;
          case 4: c.add(GateKind::Sdg, q); break;
          case 5:
            c.add(GateKind::Rz, q, rng.nextDouble(-7.0, 7.0));
            break;
          case 6:
            c.add(GateKind::Rx, q, rng.nextDouble(-7.0, 7.0));
            break;
          default: {
            auto t = static_cast<std::uint32_t>(
                rng.nextBelow(qubits - 1));
            if (t >= q)
                ++t;
            c.addCnot(q, t);
          }
        }
    }
    return c;
}

sim::StateVector
randomState(std::size_t qubits, Rng &rng)
{
    std::vector<sim::Amplitude> amps(std::size_t{1} << qubits);
    for (auto &amp : amps)
        amp = sim::Amplitude(rng.nextGaussian(),
                             rng.nextGaussian());
    sim::StateVector psi(qubits, std::move(amps));
    psi.normalize();
    return psi;
}

class OptimizerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(OptimizerFuzz, PassesPreserveSemantics)
{
    Rng rng(7000 + GetParam());
    const std::size_t qubits = 2 + rng.nextBelow(3);
    const std::size_t gates = 10 + rng.nextBelow(120);
    const auto original = randomCircuit(qubits, gates, rng);

    circuit::Circuit optimized = original;
    circuit::optimizeCircuit(optimized);
    EXPECT_LE(optimized.size(), original.size());

    const auto psi = randomState(qubits, rng);
    sim::StateVector a = psi, b = psi;
    a.applyCircuit(original);
    b.applyCircuit(optimized);
    // The passes only remove identity subsequences; no global
    // phase is introduced, so amplitudes must match exactly.
    double distance = 0.0;
    for (std::size_t i = 0; i < a.dimension(); ++i)
        distance += std::norm(a.amplitudes()[i] -
                              b.amplitudes()[i]);
    EXPECT_LT(std::sqrt(distance), 1e-9)
        << "gates " << original.size() << " -> "
        << optimized.size();
}

TEST_P(OptimizerFuzz, FusionPreservesSemanticsExactly)
{
    Rng rng(9000 + GetParam());
    const std::size_t qubits = 2 + rng.nextBelow(3);
    const std::size_t gates = 10 + rng.nextBelow(120);
    const auto original = randomCircuit(qubits, gates, rng);
    const auto fused = circuit::fuseSingleQubitGates(original);
    EXPECT_LE(fused.gates.size(), original.size());

    const auto psi = randomState(qubits, rng);
    sim::StateVector a = psi, b = psi;
    a.applyCircuit(original);
    b.applyFused(fused);
    // Fusion multiplies the exact gate matrices: no global phase,
    // so amplitudes agree to rounding.
    double distance = 0.0;
    for (std::size_t i = 0; i < a.dimension(); ++i)
        distance += std::norm(a.amplitudes()[i] -
                              b.amplitudes()[i]);
    EXPECT_LT(std::sqrt(distance), 1e-12)
        << "gates " << original.size() << " -> "
        << fused.gates.size();
}

TEST_P(OptimizerFuzz, LoweringPreservesSemanticsExactly)
{
    Rng rng(10000 + GetParam());
    const std::size_t qubits = 2 + rng.nextBelow(3);
    const auto original = randomCircuit(qubits, 60, rng);
    const auto lowered = circuit::lowerToMatrices(original);
    ASSERT_EQ(lowered.gates.size(), original.size());

    const auto psi = randomState(qubits, rng);
    sim::StateVector a = psi, b = psi;
    a.applyCircuit(original);
    b.applyFused(lowered);
    double distance = 0.0;
    for (std::size_t i = 0; i < a.dimension(); ++i)
        distance += std::norm(a.amplitudes()[i] -
                              b.amplitudes()[i]);
    EXPECT_LT(std::sqrt(distance), 1e-12);
}

TEST_P(OptimizerFuzz, OptimizationIsIdempotent)
{
    Rng rng(8000 + GetParam());
    auto c = randomCircuit(3, 60, rng);
    circuit::optimizeCircuit(c);
    const std::size_t once = c.size();
    circuit::optimizeCircuit(c);
    EXPECT_EQ(c.size(), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz,
                         ::testing::Range(0, 25));

/** Constraint-configuration sweep for the SAT encoding model. */
struct ModelConfig
{
    int modes;
    bool algebraic;
    bool vacuum;
};

class EncodingModelSweep
    : public ::testing::TestWithParam<ModelConfig>
{
};

TEST_P(EncodingModelSweep, EveryModelDecodesValidEncoding)
{
    const auto param = GetParam();
    sat::Solver solver;
    core::EncodingModelOptions options;
    options.modes = static_cast<std::size_t>(param.modes);
    options.algebraicIndependence = param.algebraic;
    options.vacuumPreservation = param.vacuum;
    options.costCap = 4 * options.modes * options.modes;
    core::EncodingModel model(solver, options);
    ASSERT_EQ(solver.solve(), sat::SolveStatus::Sat);
    const auto encoding = model.decode();
    const auto v = enc::validateEncoding(encoding);
    EXPECT_TRUE(v.anticommutativity) << v.detail;
    if (param.algebraic) {
        EXPECT_TRUE(v.algebraicIndependence) << v.detail;
    }
    if (param.vacuum) {
        EXPECT_TRUE(v.xyPairing) << v.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EncodingModelSweep,
    ::testing::Values(ModelConfig{1, true, true},
                      ModelConfig{2, true, false},
                      ModelConfig{2, false, true},
                      ModelConfig{3, false, false},
                      ModelConfig{3, true, true},
                      ModelConfig{4, false, true},
                      ModelConfig{4, false, false}));

} // namespace
} // namespace fermihedral
