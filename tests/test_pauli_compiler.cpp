/**
 * @file
 * Tests for the Pauli-evolution compiler (Figure 3 recipe).
 *
 * Exactness anchor: because P^2 = I, the target unitary satisfies
 * exp(i theta P) |psi> = cos(theta) |psi> + i sin(theta) P |psi>,
 * which the compiled circuit must reproduce on random states.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/pauli_compiler.h"

#include "common/logging.h"
#include "circuit/passes.h"
#include "common/rng.h"
#include "sim/statevector.h"

namespace fermihedral::circuit {
namespace {

using sim::Amplitude;
using sim::StateVector;

StateVector
randomState(std::size_t qubits, Rng &rng)
{
    std::vector<Amplitude> amps(std::size_t{1} << qubits);
    for (auto &amp : amps)
        amp = Amplitude(rng.nextGaussian(), rng.nextGaussian());
    StateVector psi(qubits, std::move(amps));
    psi.normalize();
    return psi;
}

/** exp(i theta P)|psi> via the closed form. */
StateVector
exactEvolution(const StateVector &psi, const pauli::PauliString &p,
               double theta)
{
    StateVector rotated = psi;
    rotated.applyPauli(p);
    std::vector<Amplitude> amps(psi.dimension());
    const Amplitude c{std::cos(theta), 0.0};
    const Amplitude is{0.0, std::sin(theta)};
    for (std::size_t i = 0; i < amps.size(); ++i) {
        amps[i] = c * psi.amplitudes()[i] +
                  is * rotated.amplitudes()[i];
    }
    return StateVector(psi.numQubits(), std::move(amps));
}

double
stateDistance(const StateVector &a, const StateVector &b)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < a.dimension(); ++i)
        sum += std::norm(a.amplitudes()[i] - b.amplitudes()[i]);
    return std::sqrt(sum);
}

class EvolutionProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(EvolutionProperty, CompiledCircuitMatchesExactUnitary)
{
    const int qubits = 4;
    Rng rng(500 + GetParam());
    // Random non-identity string with a real phase (+1 or -1).
    pauli::PauliString p(qubits);
    do {
        for (int q = 0; q < qubits; ++q)
            p.setOp(q,
                    static_cast<pauli::PauliOp>(rng.nextBelow(4)));
    } while (p.isIdentity());
    if (rng.nextBool())
        p = p.withPhase(2);
    const double theta = rng.nextDouble(-2.0, 2.0);

    Circuit circuit(qubits);
    appendPauliEvolution(circuit, p, theta);

    const StateVector psi = randomState(qubits, rng);
    StateVector compiled = psi;
    compiled.applyCircuit(circuit);
    const StateVector exact = exactEvolution(psi, p, theta);

    // Global phase: the Rz implementation differs from exp(i.. )
    // by none (we track it), so compare amplitudes directly.
    EXPECT_LT(stateDistance(compiled, exact), 1e-10)
        << p.label() << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Random, EvolutionProperty,
                         ::testing::Range(0, 30));

TEST(PauliCompiler, OptimizedCircuitStillExact)
{
    Rng rng(4242);
    const int qubits = 3;
    pauli::PauliSum h(qubits);
    h.add(0.3, pauli::PauliString::fromLabel("XXI"));
    h.add(0.5, pauli::PauliString::fromLabel("IXX"));
    h.add(-0.7, pauli::PauliString::fromLabel("ZZZ"));
    h.add(0.2, pauli::PauliString::fromLabel("IYX"));
    h.simplify();

    for (const TermOrder order :
         {TermOrder::Natural, TermOrder::Lexicographic,
          TermOrder::GreedyOverlap}) {
        CompileOptions raw{order, false, 1};
        CompileOptions opt{order, true, 1};
        const Circuit c_raw = compileTrotter(h, 0.37, raw);
        const Circuit c_opt = compileTrotter(h, 0.37, opt);
        EXPECT_LE(c_opt.size(), c_raw.size());

        const StateVector psi = randomState(qubits, rng);
        StateVector a = psi, b = psi;
        a.applyCircuit(c_raw);
        b.applyCircuit(c_opt);
        EXPECT_LT(stateDistance(a, b), 1e-10);
    }
}

TEST(PauliCompiler, IdentityTermEmitsNothing)
{
    Circuit circuit(2);
    appendPauliEvolution(circuit,
                         pauli::PauliString::fromLabel("II"), 0.5);
    EXPECT_EQ(circuit.size(), 0u);
}

TEST(PauliCompiler, NegativePhaseFlipsAngle)
{
    Rng rng(7);
    const auto p = pauli::PauliString::fromLabel("XZ");
    const auto minus_p = pauli::PauliString::fromLabel("-XZ");
    Circuit a(2), b(2);
    appendPauliEvolution(a, p, 0.4);
    appendPauliEvolution(b, minus_p, -0.4);
    const StateVector psi = randomState(2, rng);
    StateVector sa = psi, sb = psi;
    sa.applyCircuit(a);
    sb.applyCircuit(b);
    EXPECT_LT(stateDistance(sa, sb), 1e-12);
}

TEST(PauliCompiler, ImaginaryPhaseIsRejected)
{
    Circuit circuit(1);
    EXPECT_THROW(appendPauliEvolution(
                     circuit, pauli::PauliString::fromLabel("iX"),
                     0.5),
                 PanicError);
}

TEST(PauliCompiler, SingleStepTrotterOfCommutingTermsIsExact)
{
    // Commuting Z-type terms: one Trotter step is exact.
    Rng rng(8);
    pauli::PauliSum h(3);
    h.add(0.4, pauli::PauliString::fromLabel("ZZI"));
    h.add(-0.3, pauli::PauliString::fromLabel("IZZ"));
    h.add(0.9, pauli::PauliString::fromLabel("ZIZ"));
    h.simplify();

    const Circuit c = compileTrotter(h, 0.81);
    const StateVector psi = randomState(3, rng);
    StateVector compiled = psi;
    compiled.applyCircuit(c);

    // Exact: apply each term's closed form sequentially.
    StateVector exact = psi;
    for (const auto &term : h.terms()) {
        exact = exactEvolution(exact, term.string,
                               term.coefficient.real() * 0.81);
    }
    EXPECT_LT(stateDistance(compiled, exact), 1e-10);
}

TEST(PauliCompiler, MoreTrotterStepsReduceError)
{
    Rng rng(9);
    pauli::PauliSum h(2);
    h.add(0.7, pauli::PauliString::fromLabel("XI"));
    h.add(0.9, pauli::PauliString::fromLabel("ZZ"));
    h.simplify();

    // Reference: many steps.
    CompileOptions fine;
    fine.trotterSteps = 512;
    const Circuit reference = compileTrotter(h, 1.0, fine);
    const StateVector psi = randomState(2, rng);
    StateVector ref_state = psi;
    ref_state.applyCircuit(reference);

    double last_error = 1e9;
    for (std::size_t steps : {1u, 4u, 16u}) {
        CompileOptions options;
        options.trotterSteps = steps;
        const Circuit c = compileTrotter(h, 1.0, options);
        StateVector s = psi;
        s.applyCircuit(c);
        const double error = stateDistance(s, ref_state);
        EXPECT_LT(error, last_error);
        last_error = error;
    }
}

TEST(OrderTerms, GreedyCoversAllTerms)
{
    pauli::PauliSum h(2);
    h.add(1.0, pauli::PauliString::fromLabel("XX"));
    h.add(1.0, pauli::PauliString::fromLabel("ZZ"));
    h.add(1.0, pauli::PauliString::fromLabel("XI"));
    h.add(1.0, pauli::PauliString::fromLabel("II")); // dropped
    h.simplify();
    const auto ordered = orderTerms(h, TermOrder::GreedyOverlap);
    EXPECT_EQ(ordered.size(), 3u);
}

TEST(OrderTerms, GreedyReducesGateCountOnStructuredInput)
{
    // Terms sharing X-basis support benefit from adjacency.
    pauli::PauliSum h(4);
    h.add(0.1, pauli::PauliString::fromLabel("XXII"));
    h.add(0.2, pauli::PauliString::fromLabel("ZZII"));
    h.add(0.3, pauli::PauliString::fromLabel("XXXX"));
    h.add(0.4, pauli::PauliString::fromLabel("ZZZZ"));
    h.add(0.5, pauli::PauliString::fromLabel("XXII"));
    h.simplify();

    CompileOptions natural{TermOrder::Natural, true, 1};
    CompileOptions greedy{TermOrder::GreedyOverlap, true, 1};
    const auto natural_cost =
        compileTrotter(h, 1.0, natural).costs();
    const auto greedy_cost = compileTrotter(h, 1.0, greedy).costs();
    EXPECT_LE(greedy_cost.totalGates, natural_cost.totalGates);
}

} // namespace
} // namespace fermihedral::circuit
