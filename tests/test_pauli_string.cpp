/**
 * @file
 * Unit and property tests for Pauli strings.
 *
 * The load-bearing property test cross-checks the symbolic algebra
 * (products, phases, commutation, basis action) against explicit
 * dense matrices built from the 2x2 Pauli definitions.
 */

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.h"
#include "pauli/pauli_string.h"

namespace fermihedral::pauli {
namespace {

using Amp = std::complex<double>;
using Matrix = std::vector<Amp>; // row-major, square

/** Dense matrix of a single Pauli operator. */
Matrix
opMatrix(PauliOp op)
{
    const Amp i{0.0, 1.0};
    switch (op) {
      case PauliOp::I: return {1, 0, 0, 1};
      case PauliOp::X: return {0, 1, 1, 0};
      case PauliOp::Y: return {0, -i, i, 0};
      case PauliOp::Z: return {1, 0, 0, -1};
    }
    return {};
}

Matrix
kronecker(const Matrix &a, std::size_t da, const Matrix &b,
          std::size_t db)
{
    Matrix out(da * db * da * db);
    for (std::size_t ra = 0; ra < da; ++ra)
        for (std::size_t ca = 0; ca < da; ++ca)
            for (std::size_t rb = 0; rb < db; ++rb)
                for (std::size_t cb = 0; cb < db; ++cb)
                    out[(ra * db + rb) * (da * db) + (ca * db + cb)] =
                        a[ra * da + ca] * b[rb * db + cb];
    return out;
}

/** Dense matrix of a full Pauli string (highest qubit leftmost). */
Matrix
stringMatrix(const PauliString &p)
{
    Matrix acc = {1.0};
    std::size_t dim = 1;
    for (std::size_t q = p.numQubits(); q-- > 0;) {
        acc = kronecker(acc, dim, opMatrix(p.op(q)), 2);
        dim *= 2;
    }
    for (auto &entry : acc)
        entry *= p.phaseFactor();
    return acc;
}

Matrix
multiply(const Matrix &a, const Matrix &b, std::size_t dim)
{
    Matrix out(dim * dim, Amp{0, 0});
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t k = 0; k < dim; ++k)
            for (std::size_t c = 0; c < dim; ++c)
                out[r * dim + c] += a[r * dim + k] * b[k * dim + c];
    return out;
}

bool
approxEqual(const Matrix &a, const Matrix &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::abs(a[i] - b[i]) > 1e-9)
            return false;
    return true;
}

PauliString
randomString(std::size_t qubits, Rng &rng)
{
    PauliString p(qubits);
    for (std::size_t q = 0; q < qubits; ++q)
        p.setOp(q, static_cast<PauliOp>(rng.nextBelow(4)));
    return p.withPhase(static_cast<int>(rng.nextBelow(4)));
}

TEST(PauliString, LabelRoundTrip)
{
    for (const char *label : {"XYZI", "IIII", "ZZ", "X", "YXZZY"}) {
        EXPECT_EQ(PauliString::fromLabel(label).label(), label);
    }
}

TEST(PauliString, PhasePrefixParsing)
{
    EXPECT_EQ(PauliString::fromLabel("-XX").phaseExp(), 2);
    EXPECT_EQ(PauliString::fromLabel("iZ").phaseExp(), 1);
    EXPECT_EQ(PauliString::fromLabel("-iY").phaseExp(), 3);
    EXPECT_EQ(PauliString::fromLabel("-iY").label(), "-iY");
}

TEST(PauliString, QubitOrderConvention)
{
    // Leftmost label char is the highest qubit (paper convention).
    const auto p = PauliString::fromLabel("XYZ");
    EXPECT_EQ(p.op(2), PauliOp::X);
    EXPECT_EQ(p.op(1), PauliOp::Y);
    EXPECT_EQ(p.op(0), PauliOp::Z);
}

TEST(PauliString, WeightCountsNonIdentity)
{
    EXPECT_EQ(PauliString::fromLabel("IIXX").weight(), 2u);
    EXPECT_EQ(PauliString::fromLabel("IIII").weight(), 0u);
    EXPECT_EQ(PauliString::fromLabel("XYZZ").weight(), 4u);
}

TEST(PauliString, PaperAnticommutationExamples)
{
    // Section 3.3: XX and YY commute; XXX and YYY anticommute.
    const auto xx = PauliString::fromLabel("XX");
    const auto yy = PauliString::fromLabel("YY");
    EXPECT_TRUE(xx.commutesWith(yy));
    const auto xxx = PauliString::fromLabel("XXX");
    const auto yyy = PauliString::fromLabel("YYY");
    EXPECT_TRUE(xxx.anticommutesWith(yyy));
}

TEST(PauliString, SingleOperatorProducts)
{
    // X*Y = iZ and friends.
    const auto x = PauliString::fromLabel("X");
    const auto y = PauliString::fromLabel("Y");
    const auto z = PauliString::fromLabel("Z");
    EXPECT_EQ((x * y).label(), "iZ");
    EXPECT_EQ((y * x).label(), "-iZ");
    EXPECT_EQ((y * z).label(), "iX");
    EXPECT_EQ((z * x).label(), "iY");
    EXPECT_EQ((x * x).label(), "I");
}

TEST(PauliString, AdjointConjugatesPhase)
{
    const auto p = PauliString::fromLabel("iXY");
    EXPECT_EQ(p.adjoint().phaseExp(), 3);
    const auto q = PauliString::fromLabel("-ZZ");
    EXPECT_EQ(q.adjoint().phaseExp(), 2);
}

TEST(PauliString, ApplyToBasisMatchesDefinition)
{
    // Y|0> = i|1>, Y|1> = -i|0>.
    const auto y = PauliString::fromLabel("Y");
    const auto on0 = y.applyToBasis(0);
    EXPECT_EQ(on0.bits, 1u);
    EXPECT_EQ(on0.amplitude(), (Amp{0, 1}));
    const auto on1 = y.applyToBasis(1);
    EXPECT_EQ(on1.bits, 0u);
    EXPECT_EQ(on1.amplitude(), (Amp{0, -1}));
}

TEST(PauliString, ProductWeightMatchesProduct)
{
    Rng rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        const auto a = randomString(5, rng);
        const auto b = randomString(5, rng);
        EXPECT_EQ(productWeight(a, b), (a * b).weight());
    }
}

TEST(PauliString, HashDistinguishesPhases)
{
    const auto a = PauliString::fromLabel("XY");
    const auto b = PauliString::fromLabel("-XY");
    EXPECT_NE(a, b);
    EXPECT_TRUE(a.bareEquals(b));
}

/** Property suite over random string pairs of a given width. */
class PauliMatrixProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PauliMatrixProperty, ProductMatchesMatrixProduct)
{
    const int qubits = GetParam();
    const std::size_t dim = std::size_t{1} << qubits;
    Rng rng(77 + qubits);
    for (int trial = 0; trial < 40; ++trial) {
        const auto a = randomString(qubits, rng);
        const auto b = randomString(qubits, rng);
        const auto product = a * b;
        const auto lhs = stringMatrix(product);
        const auto rhs =
            multiply(stringMatrix(a), stringMatrix(b), dim);
        EXPECT_TRUE(approxEqual(lhs, rhs))
            << a.label() << " * " << b.label() << " != "
            << product.label();
    }
}

TEST_P(PauliMatrixProperty, AnticommutationMatchesMatrices)
{
    const int qubits = GetParam();
    const std::size_t dim = std::size_t{1} << qubits;
    Rng rng(177 + qubits);
    for (int trial = 0; trial < 40; ++trial) {
        const auto a = randomString(qubits, rng);
        const auto b = randomString(qubits, rng);
        const auto ab = multiply(stringMatrix(a), stringMatrix(b),
                                 dim);
        const auto ba = multiply(stringMatrix(b), stringMatrix(a),
                                 dim);
        double anti_norm = 0.0;
        for (std::size_t i = 0; i < ab.size(); ++i)
            anti_norm += std::abs(ab[i] + ba[i]);
        const bool matrices_anticommute = anti_norm < 1e-9;
        EXPECT_EQ(a.anticommutesWith(b), matrices_anticommute)
            << a.label() << " vs " << b.label();
    }
}

TEST_P(PauliMatrixProperty, BasisActionMatchesMatrix)
{
    const int qubits = GetParam();
    const std::size_t dim = std::size_t{1} << qubits;
    Rng rng(277 + qubits);
    for (int trial = 0; trial < 40; ++trial) {
        const auto p = randomString(qubits, rng);
        const auto matrix = stringMatrix(p);
        for (std::uint64_t basis = 0; basis < dim; ++basis) {
            const auto image = p.applyToBasis(basis);
            // Column `basis` of the matrix must be the image.
            for (std::uint64_t row = 0; row < dim; ++row) {
                const Amp expected = row == image.bits
                                         ? image.amplitude()
                                         : Amp{0, 0};
                EXPECT_LT(std::abs(matrix[row * dim + basis] -
                                   expected),
                          1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, PauliMatrixProperty,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace fermihedral::pauli
