/**
 * @file
 * Unit tests for PauliSum.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "pauli/pauli_sum.h"

namespace fermihedral::pauli {
namespace {

TEST(PauliSum, SimplifyCombinesEqualTensors)
{
    PauliSum sum(2);
    sum.add(1.0, PauliString::fromLabel("XZ"));
    sum.add(2.5, PauliString::fromLabel("XZ"));
    sum.add(1.0, PauliString::fromLabel("ZZ"));
    sum.simplify();
    ASSERT_EQ(sum.size(), 2u);
    EXPECT_DOUBLE_EQ(sum.terms()[1].coefficient.real(), 3.5);
}

TEST(PauliSum, SimplifyDropsCancelledTerms)
{
    PauliSum sum(1);
    sum.add(1.0, PauliString::fromLabel("X"));
    sum.add(-1.0, PauliString::fromLabel("X"));
    sum.simplify();
    EXPECT_EQ(sum.size(), 0u);
}

TEST(PauliSum, PhaseFoldsIntoCoefficient)
{
    PauliSum sum(1);
    // 2 * (iX) folds to 2i * X; adding another 2i * X gives 4i * X.
    sum.add(2.0, PauliString::fromLabel("iX"));
    sum.add(std::complex<double>(0.0, 2.0),
            PauliString::fromLabel("X"));
    sum.simplify();
    ASSERT_EQ(sum.size(), 1u);
    EXPECT_NEAR(sum.terms()[0].coefficient.imag(), 4.0, 1e-12)
        << sum.toString();
    // And 2 * (iX) plus -2i * X cancels exactly.
    PauliSum zero(1);
    zero.add(2.0, PauliString::fromLabel("iX"));
    zero.add(std::complex<double>(0.0, -2.0),
             PauliString::fromLabel("X"));
    zero.simplify();
    EXPECT_EQ(zero.size(), 0u);
}

TEST(PauliSum, TotalWeight)
{
    PauliSum sum(3);
    sum.add(1.0, PauliString::fromLabel("XIZ")); // weight 2
    sum.add(1.0, PauliString::fromLabel("III")); // weight 0
    sum.add(1.0, PauliString::fromLabel("YYY")); // weight 3
    sum.simplify();
    EXPECT_EQ(sum.totalWeight(), 5u);
}

TEST(PauliSum, HermitianDetection)
{
    PauliSum sum(1);
    sum.add(1.0, PauliString::fromLabel("X"));
    EXPECT_TRUE(sum.isHermitian());
    sum.add(std::complex<double>(0.0, 0.5),
            PauliString::fromLabel("Z"));
    EXPECT_FALSE(sum.isHermitian());
    EXPECT_NEAR(sum.maxImaginaryMagnitude(), 0.5, 1e-12);
}

TEST(PauliSum, ScaleMultipliesCoefficients)
{
    PauliSum sum(1);
    sum.add(2.0, PauliString::fromLabel("Z"));
    sum.scale(-0.5);
    EXPECT_DOUBLE_EQ(sum.terms()[0].coefficient.real(), -1.0);
}

TEST(PauliSum, AddSumMergesTermLists)
{
    PauliSum a(1), b(1);
    a.add(1.0, PauliString::fromLabel("X"));
    b.add(1.0, PauliString::fromLabel("X"));
    b.add(1.0, PauliString::fromLabel("Z"));
    a.add(b);
    a.simplify();
    ASSERT_EQ(a.size(), 2u);
    for (const auto &term : a.terms()) {
        const double expected =
            term.string.label() == "X" ? 2.0 : 1.0;
        EXPECT_DOUBLE_EQ(term.coefficient.real(), expected);
    }
}

TEST(PauliSum, WidthMismatchPanics)
{
    PauliSum sum(2);
    EXPECT_THROW(sum.add(1.0, PauliString::fromLabel("X")),
                 PanicError);
}

} // namespace
} // namespace fermihedral::pauli
