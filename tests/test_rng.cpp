/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace fermihedral {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, ZeroSeedIsHealthy)
{
    Rng rng(0);
    std::uint64_t all_or = 0;
    for (int i = 0; i < 64; ++i)
        all_or |= rng.next();
    EXPECT_NE(all_or, 0u);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(7);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++counts[rng.nextBelow(5)];
    for (int residue = 0; residue < 5; ++residue)
        EXPECT_GT(counts[residue], 800) << "residue " << residue;
}

TEST(Rng, NextIntInclusiveBounds)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int samples = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < samples; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / samples;
    const double var = sum_sq / samples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / double(samples), 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(21);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 4);
}

} // namespace
} // namespace fermihedral
