/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fermihedral {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, ZeroSeedIsHealthy)
{
    Rng rng(0);
    std::uint64_t all_or = 0;
    for (int i = 0; i < 64; ++i)
        all_or |= rng.next();
    EXPECT_NE(all_or, 0u);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(7);
    std::vector<int> counts(5, 0);
    for (int i = 0; i < 5000; ++i)
        ++counts[rng.nextBelow(5)];
    for (int residue = 0; residue < 5; ++residue)
        EXPECT_GT(counts[residue], 800) << "residue " << residue;
}

TEST(Rng, NextIntInclusiveBounds)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int samples = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < samples; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / samples;
    const double var = sum_sq / samples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / double(samples), 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(21);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, ForkLeavesParentSequenceUnchanged)
{
    Rng forked(33), untouched(33);
    forked.fork(0);
    forked.fork(1);
    forked.fork(0xffffffffffffffffull);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(forked.next(), untouched.next());
}

TEST(Rng, ForkIsDeterministic)
{
    Rng parent(34);
    Rng a = parent.fork(7);
    Rng b = parent.fork(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkStreamsAreIndependent)
{
    // Distinct stream ids must give diverging streams, and every
    // stream must differ from the parent's own output.
    Rng parent(35);
    Rng s0 = parent.fork(0);
    Rng s1 = parent.fork(1);
    Rng s2 = parent.fork(2);
    int eq01 = 0, eq12 = 0, eq0p = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t v0 = s0.next();
        const std::uint64_t v1 = s1.next();
        const std::uint64_t v2 = s2.next();
        eq01 += v0 == v1;
        eq12 += v1 == v2;
        eq0p += v0 == parent.next();
    }
    EXPECT_LT(eq01, 4);
    EXPECT_LT(eq12, 4);
    EXPECT_LT(eq0p, 4);
}

TEST(Rng, ForkStreamsCoverConsecutiveIds)
{
    // Shot runners fork ids 0..N-1; uniformity must not degrade for
    // consecutive ids. Pool the first double of many streams.
    Rng parent(36);
    std::vector<int> buckets(8, 0);
    const int streams = 8000;
    for (int s = 0; s < streams; ++s) {
        Rng child = parent.fork(static_cast<std::uint64_t>(s));
        const double u = child.nextDouble();
        ++buckets[static_cast<std::size_t>(u * 8.0)];
    }
    for (int b = 0; b < 8; ++b)
        EXPECT_GT(buckets[b], 800) << "bucket " << b;
}

TEST(Rng, ForkDependsOnParentState)
{
    // fork() is keyed on the parent's current state: after the
    // parent advances, the same stream id yields a fresh stream.
    Rng parent(37);
    Rng before = parent.fork(5);
    parent.next();
    Rng after = parent.fork(5);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += before.next() == after.next();
    EXPECT_LT(equal, 4);
}

} // namespace
} // namespace fermihedral
