/**
 * @file
 * Differential fuzz harness for the CDCL core.
 *
 * Races the production Solver against a tiny reference DPLL solver
 * (unit propagation + chronological backtracking — slow but simple
 * enough to audit by eye) over seeded random instances: random
 * 3-SAT near the phase transition, mixed-width k-SAT, totalizer
 * cardinality instances, and assumption-based incremental solves
 * that interleave inprocess()/clearLearnts() calls. Verdicts must
 * agree on every instance; every Sat answer is validated clause by
 * clause against the reported model; instances also round-trip
 * through the DIMACS writer/parser.
 *
 * Environment knobs (the CI fuzz-smoke job uses both):
 *  - FERMIHEDRAL_FUZZ_ITERATIONS: total instance budget across the
 *    families (default 520, floor 8).
 *  - FERMIHEDRAL_FUZZ_ARTIFACT_DIR: when set, every failing
 *    instance is written there as a DIMACS file named after its
 *    family and seed, for offline reproduction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "sat/totalizer.h"
#include "sat/types.h"

namespace sat = fermihedral::sat;
using fermihedral::Rng;
using sat::litSign;
using sat::litToString;
using sat::litVar;
using sat::mkLit;

namespace {

/** A generated instance: clause list over dense variables. */
struct Instance
{
    std::size_t numVars = 0;
    std::vector<std::vector<sat::Lit>> clauses;
};

// --------------------------------------------------------------------
// Reference solver: DPLL with unit propagation, no heuristics.
// --------------------------------------------------------------------

class ReferenceSolver
{
  public:
    explicit ReferenceSolver(const Instance &instance)
        : clauses(instance.clauses),
          values(instance.numVars, sat::LBool::Undef)
    {
    }

    bool
    solve(const std::vector<sat::Lit> &assumptions = {})
    {
        std::fill(values.begin(), values.end(),
                  sat::LBool::Undef);
        for (const sat::Lit lit : assumptions) {
            if (value(lit) == sat::LBool::False)
                return false;
            assign(lit);
        }
        return dpll();
    }

    sat::LBool
    modelValue(sat::Var var) const
    {
        return values[static_cast<std::size_t>(var)];
    }

  private:
    sat::LBool
    value(sat::Lit lit) const
    {
        const sat::LBool v =
            values[static_cast<std::size_t>(litVar(lit))];
        return litSign(lit) ? -v : v;
    }

    void
    assign(sat::Lit lit)
    {
        values[static_cast<std::size_t>(litVar(lit))] =
            litSign(lit) ? sat::LBool::False : sat::LBool::True;
    }

    /** Propagate to fixpoint; false on an empty clause. */
    bool
    propagate(std::vector<sat::Lit> &trail)
    {
        bool changed = true;
        while (changed) {
            changed = false;
            for (const auto &clause : clauses) {
                sat::Lit unassigned = sat::litUndef;
                std::size_t open = 0;
                bool satisfied = false;
                for (const sat::Lit lit : clause) {
                    const sat::LBool v = value(lit);
                    if (v == sat::LBool::True) {
                        satisfied = true;
                        break;
                    }
                    if (v == sat::LBool::Undef) {
                        unassigned = lit;
                        ++open;
                    }
                }
                if (satisfied)
                    continue;
                if (open == 0)
                    return false;
                if (open == 1) {
                    assign(unassigned);
                    trail.push_back(unassigned);
                    changed = true;
                }
            }
        }
        return true;
    }

    bool
    dpll()
    {
        std::vector<sat::Lit> trail;
        if (!propagate(trail)) {
            for (const sat::Lit lit : trail)
                values[static_cast<std::size_t>(litVar(lit))] =
                    sat::LBool::Undef;
            return false;
        }
        sat::Var branch = sat::varUndef;
        for (std::size_t v = 0; v < values.size(); ++v) {
            if (values[v] == sat::LBool::Undef) {
                branch = static_cast<sat::Var>(v);
                break;
            }
        }
        if (branch == sat::varUndef)
            return true; // complete assignment, all clauses open->sat
        for (const bool negated : {false, true}) {
            assign(mkLit(branch, negated));
            if (dpll())
                return true;
            values[static_cast<std::size_t>(branch)] =
                sat::LBool::Undef;
        }
        for (const sat::Lit lit : trail)
            values[static_cast<std::size_t>(litVar(lit))] =
                sat::LBool::Undef;
        return false;
    }

    const std::vector<std::vector<sat::Lit>> &clauses;
    std::vector<sat::LBool> values;
};

// --------------------------------------------------------------------
// Clause-recording SolverBase (drives the totalizer generator).
// --------------------------------------------------------------------

class CnfBuilder final : public sat::SolverBase
{
  public:
    sat::Var
    newVar() override
    {
        return static_cast<sat::Var>(vars++);
    }
    std::size_t numVars() const override { return vars; }
    std::size_t numClauses() const override
    {
        return clauses.size();
    }
    using sat::SolverBase::addClause;
    bool
    addClause(std::span<const sat::Lit> literals) override
    {
        clauses.emplace_back(literals.begin(), literals.end());
        return true;
    }
    sat::SolveStatus
    solve(std::span<const sat::Lit>, const sat::Budget &) override
    {
        return sat::SolveStatus::Unknown;
    }
    sat::LBool modelValue(sat::Var) const override
    {
        return sat::LBool::Undef;
    }
    void setPolarity(sat::Var, bool) override {}
    void boostActivity(sat::Var, double) override {}
    bool inconsistent() const override { return false; }
    const sat::SolverStats &stats() const override
    {
        return statistics;
    }

    Instance
    toInstance() const
    {
        return Instance{vars, clauses};
    }

  private:
    std::size_t vars = 0;
    std::vector<std::vector<sat::Lit>> clauses;
    sat::SolverStats statistics;
};

// --------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------

std::vector<sat::Lit>
randomClause(Rng &rng, std::size_t num_vars, std::size_t width)
{
    std::vector<sat::Var> vars;
    while (vars.size() < width) {
        const auto var = static_cast<sat::Var>(
            rng.nextBelow(num_vars));
        if (std::find(vars.begin(), vars.end(), var) ==
            vars.end()) {
            vars.push_back(var);
        }
    }
    std::vector<sat::Lit> clause;
    clause.reserve(width);
    for (const sat::Var var : vars)
        clause.push_back(mkLit(var, rng.nextBool()));
    return clause;
}

/** Random 3-SAT around the ~4.26 clause/variable transition. */
Instance
random3Sat(Rng &rng)
{
    Instance instance;
    instance.numVars = 8 + rng.nextBelow(13); // 8..20
    const auto num_clauses = static_cast<std::size_t>(
        3.8 * static_cast<double>(instance.numVars) +
        static_cast<double>(rng.nextBelow(instance.numVars)));
    for (std::size_t c = 0; c < num_clauses; ++c)
        instance.clauses.push_back(
            randomClause(rng, instance.numVars, 3));
    return instance;
}

/** Mixed widths 1..5: units and binaries stress the special paths. */
Instance
randomMixedSat(Rng &rng)
{
    Instance instance;
    instance.numVars = 6 + rng.nextBelow(15); // 6..20
    const std::size_t num_clauses =
        2 * instance.numVars + rng.nextBelow(3 * instance.numVars);
    for (std::size_t c = 0; c < num_clauses; ++c) {
        const std::size_t roll = rng.nextBelow(10);
        const std::size_t width =
            roll == 0 ? 1 : roll < 5 ? 2 : roll < 8 ? 3 : 4;
        instance.clauses.push_back(randomClause(
            rng, instance.numVars,
            std::min(width, instance.numVars)));
    }
    return instance;
}

/** A totalizer counter plus random side constraints and a bound. */
Instance
randomTotalizer(Rng &rng)
{
    CnfBuilder builder;
    const std::size_t num_inputs = 4 + rng.nextBelow(7); // 4..10
    std::vector<sat::Lit> inputs;
    for (std::size_t i = 0; i < num_inputs; ++i)
        inputs.push_back(
            mkLit(builder.newVar(), rng.nextBool()));
    const std::size_t cap = 1 + rng.nextBelow(num_inputs);
    sat::Totalizer totalizer(builder, inputs, cap);

    // Side constraints over the inputs push the count around; a
    // few forced inputs make the bound genuinely refutable.
    const std::size_t extra = 2 + rng.nextBelow(2 * num_inputs);
    for (std::size_t c = 0; c < extra; ++c)
        builder.addClause(randomClause(
            rng, num_inputs, std::min<std::size_t>(
                                 2 + rng.nextBelow(2), num_inputs)));
    const std::size_t forced = rng.nextBelow(num_inputs / 2 + 1);
    for (std::size_t i = 0; i < forced; ++i)
        builder.addClause(
            {inputs[rng.nextBelow(inputs.size())]});

    totalizer.boundAtMost(rng.nextBelow(totalizer.width()));
    return builder.toInstance();
}

// --------------------------------------------------------------------
// Checking
// --------------------------------------------------------------------

sat::Cnf
toCnf(const Instance &instance)
{
    sat::Cnf cnf;
    cnf.numVars = instance.numVars;
    for (const auto &clause : instance.clauses)
        cnf.addClause(clause);
    cnf.numVars = std::max(cnf.numVars, instance.numVars);
    return cnf;
}

void
writeArtifact(const Instance &instance, const char *family,
              std::uint64_t seed)
{
    const char *dir =
        std::getenv("FERMIHEDRAL_FUZZ_ARTIFACT_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    const std::string path = std::string(dir) + "/" + family +
                             "-" + std::to_string(seed) + ".cnf";
    std::ofstream file(path);
    file << sat::toDimacs(toCnf(instance));
}

testing::AssertionResult
modelSatisfies(const sat::Solver &solver, const Instance &instance,
               const std::vector<sat::Lit> &assumptions)
{
    for (std::size_t c = 0; c < instance.clauses.size(); ++c) {
        bool satisfied = false;
        for (const sat::Lit lit : instance.clauses[c])
            satisfied |=
                solver.modelValue(lit) == sat::LBool::True;
        if (!satisfied) {
            return testing::AssertionFailure()
                   << "model falsifies clause " << c;
        }
    }
    for (const sat::Lit lit : assumptions) {
        if (solver.modelValue(lit) != sat::LBool::True) {
            return testing::AssertionFailure()
                   << "model violates assumption "
                   << litToString(lit);
        }
    }
    return testing::AssertionSuccess();
}

/**
 * One differential episode: load the instance once, then solve it
 * under each assumption set in order (reference vs production),
 * optionally interleaving inprocess()/clearLearnts() between the
 * incremental calls.
 */
testing::AssertionResult
checkInstance(const Instance &instance,
              const std::vector<std::vector<sat::Lit>> &episodes,
              bool self_check, bool maintain)
{
    ReferenceSolver reference(instance);

    sat::SolverConfig config;
    config.selfCheck = self_check;
    sat::Solver solver(config);
    for (std::size_t v = 0; v < instance.numVars; ++v)
        solver.newVar();
    bool load_conflict = false;
    for (const auto &clause : instance.clauses)
        load_conflict |= !solver.addClause(clause);

    for (std::size_t e = 0; e < episodes.size(); ++e) {
        const auto &assumptions = episodes[e];
        const bool ref_sat = reference.solve(assumptions);
        const sat::SolveStatus status =
            solver.solve(assumptions);
        if (status == sat::SolveStatus::Unknown) {
            return testing::AssertionFailure()
                   << "episode " << e
                   << ": Unknown without a budget";
        }
        const bool got_sat = status == sat::SolveStatus::Sat;
        if (got_sat != ref_sat) {
            return testing::AssertionFailure()
                   << "episode " << e << ": solver says "
                   << (got_sat ? "SAT" : "UNSAT")
                   << ", reference says "
                   << (ref_sat ? "SAT" : "UNSAT");
        }
        if (got_sat) {
            const auto valid =
                modelSatisfies(solver, instance, assumptions);
            if (!valid) {
                return testing::AssertionFailure()
                       << "episode " << e << ": "
                       << valid.message();
            }
        }
        if (maintain && !solver.inconsistent()) {
            if (e % 2 == 0)
                solver.inprocess();
            else
                solver.clearLearnts();
        }
    }
    (void)load_conflict; // covered by the Unsat verdict agreement
    return testing::AssertionSuccess();
}

/** Total instance budget (FERMIHEDRAL_FUZZ_ITERATIONS override). */
std::size_t
totalBudget()
{
    const char *env =
        std::getenv("FERMIHEDRAL_FUZZ_ITERATIONS");
    if (env != nullptr && *env != '\0') {
        const long value = std::atol(env);
        if (value > 0) {
            return std::max<std::size_t>(
                8, static_cast<std::size_t>(value));
        }
    }
    return 520;
}

std::vector<sat::Lit>
randomAssumptions(Rng &rng, std::size_t num_vars)
{
    std::vector<sat::Lit> lits;
    const std::size_t count = 1 + rng.nextBelow(4);
    for (std::size_t i = 0; i < count; ++i)
        lits.push_back(mkLit(
            static_cast<sat::Var>(rng.nextBelow(num_vars)),
            rng.nextBool()));
    return lits;
}

} // namespace

TEST(Differential, Random3Sat)
{
    const std::size_t count = totalBudget() / 2;
    for (std::uint64_t seed = 0; seed < count; ++seed) {
        Rng rng(0x35a7u ^ (seed * 0x9e3779b97f4a7c15ull));
        const Instance instance = random3Sat(rng);
        const auto result = checkInstance(
            instance, {{}}, /*self_check=*/seed % 8 == 0,
            /*maintain=*/false);
        EXPECT_TRUE(result) << "seed " << seed;
        if (!result)
            writeArtifact(instance, "random3sat", seed);
    }
}

TEST(Differential, MixedKSat)
{
    const std::size_t count = totalBudget() / 4;
    for (std::uint64_t seed = 0; seed < count; ++seed) {
        Rng rng(0x77131u ^ (seed * 0x9e3779b97f4a7c15ull));
        const Instance instance = randomMixedSat(rng);
        const auto result = checkInstance(
            instance, {{}}, /*self_check=*/seed % 8 == 0,
            /*maintain=*/false);
        EXPECT_TRUE(result) << "seed " << seed;
        if (!result)
            writeArtifact(instance, "mixedksat", seed);
    }
}

TEST(Differential, TotalizerCardinality)
{
    const std::size_t count =
        std::max<std::size_t>(totalBudget() / 8, 4);
    for (std::uint64_t seed = 0; seed < count; ++seed) {
        Rng rng(0xb0717u ^ (seed * 0x9e3779b97f4a7c15ull));
        const Instance instance = randomTotalizer(rng);
        const auto result = checkInstance(
            instance, {{}}, /*self_check=*/seed % 4 == 0,
            /*maintain=*/false);
        EXPECT_TRUE(result) << "seed " << seed;
        if (!result)
            writeArtifact(instance, "totalizer", seed);
    }
}

TEST(Differential, IncrementalAssumptions)
{
    // Several solves of one instance under changing assumptions,
    // with inprocessing and carry-over resets interleaved: the
    // production solver must stay equivalent to a fresh reference
    // solve at every step.
    const std::size_t count =
        std::max<std::size_t>(totalBudget() / 8, 4);
    for (std::uint64_t seed = 0; seed < count; ++seed) {
        Rng rng(0x1ec5du ^ (seed * 0x9e3779b97f4a7c15ull));
        Instance instance = random3Sat(rng);
        std::vector<std::vector<sat::Lit>> episodes;
        episodes.push_back({}); // assumption-free baseline first
        const std::size_t extra = 2 + rng.nextBelow(3);
        for (std::size_t e = 0; e < extra; ++e)
            episodes.push_back(
                randomAssumptions(rng, instance.numVars));
        const auto result =
            checkInstance(instance, episodes,
                          /*self_check=*/seed % 4 == 0,
                          /*maintain=*/true);
        EXPECT_TRUE(result) << "seed " << seed;
        if (!result)
            writeArtifact(instance, "incremental", seed);
    }
}

TEST(Differential, DimacsRoundTrip)
{
    // The instance must survive text round-trips: generator ->
    // DIMACS -> parser -> solver gives the reference verdict, and
    // the solver's own snapshot re-parses to an equisatisfiable
    // instance.
    const std::size_t count =
        std::max<std::size_t>(totalBudget() / 8, 4);
    for (std::uint64_t seed = 0; seed < count; ++seed) {
        Rng rng(0xd17acu ^ (seed * 0x9e3779b97f4a7c15ull));
        const Instance instance = randomMixedSat(rng);
        ReferenceSolver reference(instance);
        const bool ref_sat = reference.solve();

        const sat::Cnf parsed =
            sat::parseDimacs(sat::toDimacs(toCnf(instance)));
        sat::Solver solver;
        parsed.loadInto(solver);
        const bool got_sat =
            solver.solve() == sat::SolveStatus::Sat;
        EXPECT_EQ(got_sat, ref_sat) << "seed " << seed;

        // Snapshot of the solved instance: equisatisfiable after
        // another round-trip (learnt clauses must not leak in).
        const sat::Cnf snapshot = sat::parseDimacs(
            sat::toDimacs(sat::snapshotCnf(solver)));
        sat::Solver replay;
        snapshot.loadInto(replay);
        const bool replay_sat =
            replay.solve() == sat::SolveStatus::Sat;
        EXPECT_EQ(replay_sat, ref_sat) << "seed " << seed;
        if (got_sat != ref_sat || replay_sat != ref_sat)
            writeArtifact(instance, "roundtrip", seed);
    }
}
