/**
 * @file
 * Tests for the portfolio SAT engine: SolverBase conformance,
 * preprocessing integration (model reconstruction over eliminated
 * variables, frozen incremental interfaces, skipping under
 * assumptions), diversification, clause sharing, and the
 * deterministic-arbitration bit-identity guarantee across thread
 * counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "sat/dimacs.h"
#include "sat/portfolio.h"
#include "sat/solver.h"

namespace fermihedral::sat {
namespace {

PortfolioOptions
withInstances(std::size_t instances, std::size_t threads,
              bool deterministic = true)
{
    PortfolioOptions options;
    options.instances = instances;
    options.threads = threads;
    options.deterministic = deterministic;
    return options;
}

/** Random 3-SAT clauses over `num_vars` fresh solver variables. */
std::vector<std::vector<Lit>>
randomCnf(SolverBase &solver, int num_vars, int num_clauses,
          Rng &rng)
{
    std::vector<std::vector<Lit>> cnf;
    for (int v = 0; v < num_vars; ++v)
        solver.newVar();
    for (int c = 0; c < num_clauses; ++c) {
        std::vector<Lit> clause;
        for (int k = 0; k < 3; ++k) {
            const Var var =
                static_cast<Var>(rng.nextBelow(num_vars));
            clause.push_back(mkLit(var, rng.nextBool()));
        }
        solver.addClause(clause);
        cnf.push_back(std::move(clause));
    }
    return cnf;
}

TEST(PortfolioSolver, SimpleSatAndFullModel)
{
    PortfolioSolver solver(withInstances(2, 1));
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addClause({mkLit(a)});
    solver.addClause({~mkLit(a), mkLit(b)});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(a), LBool::True);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
}

TEST(PortfolioSolver, UnsatIsDetectedThroughPreprocessing)
{
    PortfolioSolver solver(withInstances(2, 1));
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addClause({mkLit(a), mkLit(b)});
    solver.addClause({mkLit(a), ~mkLit(b)});
    solver.addClause({~mkLit(a), mkLit(b)});
    solver.addClause({~mkLit(a), ~mkLit(b)});
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(PortfolioSolver, ModelCoversEliminatedVariables)
{
    // A Tseitin-style auxiliary (y <-> a AND b) is eliminated by
    // preprocessing, yet its model value must read back correctly.
    PortfolioSolver solver(withInstances(1, 1));
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    const Var y = solver.newVar();
    solver.freeze(a);
    solver.freeze(b);
    solver.addClause({~mkLit(y), mkLit(a)});
    solver.addClause({~mkLit(y), mkLit(b)});
    solver.addClause({~mkLit(a), ~mkLit(b), mkLit(y)});
    solver.addClause({mkLit(a)});
    solver.addClause({mkLit(b)});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(a), LBool::True);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
    // y is forced by a AND b whether or not it was eliminated.
    EXPECT_EQ(solver.modelValue(y), LBool::True);
}

TEST(PortfolioSolver, FrozenVariablesAcceptLaterClauses)
{
    PortfolioSolver solver(withInstances(2, 1));
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.freeze(a);
    solver.freeze(b);
    solver.addClause({mkLit(a), mkLit(b)});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    // Incremental tightening over frozen variables, as the
    // descent loop does with totalizer outputs.
    solver.addClause({~mkLit(a)});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
    solver.addClause({~mkLit(b)});
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(PortfolioSolver, AssumptionsOnFirstSolveSkipPreprocessing)
{
    PortfolioSolver solver(withInstances(2, 1));
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addClause({mkLit(a), mkLit(b)});
    const Lit assume[] = {~mkLit(a)};
    ASSERT_EQ(solver.solve(assume), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
    // No simplification ran, so nothing was eliminated.
    EXPECT_EQ(solver.portfolioStats().simplifier.eliminatedVariables,
              0u);
    // Assumptions are not permanent.
    EXPECT_EQ(solver.solve(), SolveStatus::Sat);
}

TEST(PortfolioSolver, InstanceZeroMatchesPlainSolver)
{
    // The portfolio's instance 0 runs the stock configuration, so
    // a 1-instance no-preprocessing portfolio must agree with a
    // plain Solver on status and model, call for call.
    Rng rng(314);
    for (int round = 0; round < 10; ++round) {
        Solver plain;
        PortfolioOptions options = withInstances(1, 1);
        options.preprocess = false;
        PortfolioSolver portfolio(options);
        Rng plain_rng = rng.fork(round);
        Rng portfolio_rng = rng.fork(round);
        const auto cnf_a = randomCnf(plain, 14, 58, plain_rng);
        const auto cnf_b =
            randomCnf(portfolio, 14, 58, portfolio_rng);
        ASSERT_EQ(cnf_a.size(), cnf_b.size());
        const SolveStatus expected = plain.solve();
        ASSERT_EQ(portfolio.solve(), expected);
        if (expected == SolveStatus::Sat) {
            for (Var v = 0; v < 14; ++v)
                EXPECT_EQ(portfolio.modelValue(v),
                          plain.modelValue(v))
                    << "round " << round << " var " << v;
        }
    }
}

TEST(PortfolioSolver, DeterministicAcrossThreadCounts)
{
    // deterministic=true: identical status and model for every
    // thread count, including racing more instances than threads.
    Rng rng(2718);
    for (int round = 0; round < 6; ++round) {
        std::vector<std::vector<LBool>> models;
        std::vector<SolveStatus> statuses;
        for (const std::size_t threads : {1u, 2u, 4u}) {
            PortfolioSolver solver(withInstances(4, threads));
            Rng clause_rng = rng.fork(round);
            randomCnf(solver, 16, 70, clause_rng);
            const SolveStatus status = solver.solve();
            statuses.push_back(status);
            std::vector<LBool> model(16, LBool::Undef);
            if (status == SolveStatus::Sat) {
                for (Var v = 0; v < 16; ++v)
                    model[v] = solver.modelValue(v);
            }
            models.push_back(std::move(model));
        }
        for (std::size_t i = 1; i < statuses.size(); ++i) {
            EXPECT_EQ(statuses[i], statuses[0])
                << "round " << round;
            EXPECT_EQ(models[i], models[0]) << "round " << round;
        }
    }
}

TEST(PortfolioSolver, RacingModeAgreesOnVerdict)
{
    // Racing arbitration may pick any decisive instance, but the
    // verdict must match the reference solver and any Sat model
    // must satisfy the formula.
    Rng rng(9001);
    for (int round = 0; round < 6; ++round) {
        Solver reference;
        PortfolioSolver racing(withInstances(4, 4, false));
        Rng ref_rng = rng.fork(round);
        Rng race_rng = rng.fork(round);
        const auto cnf = randomCnf(reference, 16, 70, ref_rng);
        randomCnf(racing, 16, 70, race_rng);
        const SolveStatus expected = reference.solve();
        const SolveStatus status = racing.solve();
        ASSERT_EQ(status, expected) << "round " << round;
        if (status == SolveStatus::Sat) {
            for (const auto &clause : cnf) {
                bool satisfied = false;
                for (const Lit lit : clause)
                    satisfied |=
                        racing.modelValue(lit) == LBool::True;
                EXPECT_TRUE(satisfied) << "round " << round;
            }
        }
    }
}

TEST(PortfolioSolver, DiversifiedConfigsDiffer)
{
    const SolverConfig base = PortfolioSolver::instanceConfig(0);
    EXPECT_EQ(base.seed, 0u);
    EXPECT_EQ(base.randomBranchFreq, 0.0);
    for (std::size_t i = 1; i < 8; ++i) {
        const SolverConfig config =
            PortfolioSolver::instanceConfig(i);
        EXPECT_NE(config.seed, 0u) << "instance " << i;
    }
    // Adjacent instances must not share the whole heuristic tuple.
    for (std::size_t i = 0; i + 1 < 8; ++i) {
        const SolverConfig a = PortfolioSolver::instanceConfig(i);
        const SolverConfig b =
            PortfolioSolver::instanceConfig(i + 1);
        const bool differs =
            a.seed != b.seed ||
            a.randomBranchFreq != b.randomBranchFreq ||
            a.initialPhase != b.initialPhase ||
            a.randomizePhases != b.randomizePhases ||
            a.restartSchedule != b.restartSchedule ||
            a.restartBase != b.restartBase;
        EXPECT_TRUE(differs) << "instances " << i << ", " << i + 1;
    }
}

TEST(PortfolioSolver, StatsAggregateAcrossInstances)
{
    PortfolioSolver solver(withInstances(3, 1));
    Rng rng(555);
    randomCnf(solver, 14, 60, rng);
    solver.solve();
    const PortfolioStats &stats = solver.portfolioStats();
    EXPECT_EQ(stats.solves, 1u);
    EXPECT_EQ(stats.satAnswers + stats.unsatAnswers +
                  stats.unknownAnswers,
              1u);
    // Deterministic mode runs every instance to completion, so the
    // aggregate covers at least the winner's work.
    EXPECT_GE(stats.aggregate.propagations,
              stats.winner.propagations);
}

TEST(ClauseExchange, RoutesClausesBetweenInstances)
{
    ClauseExchange exchange(3, 2, 8);
    const std::vector<Lit> clause = {mkLit(0), ~mkLit(1)};
    exchange.publish(0, clause, 2);
    std::vector<ClauseExchange::SharedClause> collected;
    exchange.collect(0, collected);
    EXPECT_TRUE(collected.empty()); // own clauses are not echoed
    exchange.collect(1, collected);
    ASSERT_EQ(collected.size(), 1u);
    EXPECT_EQ(collected[0].lits, clause);
    EXPECT_EQ(collected[0].lbd, 2u); // the publisher's LBD rides along
    // A second collect from the same cursor yields nothing new.
    collected.clear();
    exchange.collect(1, collected);
    EXPECT_TRUE(collected.empty());
    EXPECT_EQ(exchange.published(), 1u);
}

TEST(PortfolioSolver, SharingRacingSolvesPigeonhole)
{
    // PHP(6,5) forces real conflict work on every instance; with
    // sharing enabled the race must still return correct UNSAT.
    PortfolioSolver solver(withInstances(3, 3, false));
    const int holes = 5, pigeons = 6;
    std::vector<std::vector<Var>> at(pigeons,
                                     std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = solver.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(at[p][h]));
        solver.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                solver.addClause(
                    {~mkLit(at[p][h]), ~mkLit(at[q][h])});
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(PortfolioSolver, ContradictoryUnitsReportConflictAtAddTime)
{
    // Mirrors SatSolver.ContradictoryUnitsAreUnsat and the
    // Cnf::loadInto contract: the second unit reports the conflict.
    PortfolioSolver solver(withInstances(2, 1));
    const Var a = solver.newVar();
    EXPECT_TRUE(solver.addClause({mkLit(a)}));
    EXPECT_FALSE(solver.addClause({~mkLit(a)}));
    EXPECT_TRUE(solver.inconsistent());
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(PortfolioSolver, VariablesCreatedAfterFirstSolveAreUsable)
{
    // The SolverBase contract: variables and clauses may be added
    // between solve() calls, including after preprocessing ran.
    PortfolioSolver solver(withInstances(2, 1));
    const Var a = solver.newVar();
    solver.freeze(a);
    solver.addClause({mkLit(a)});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    const Var b = solver.newVar();
    solver.addClause({~mkLit(a), mkLit(b)});
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
}

TEST(PortfolioSolver, CallerStopFlagCancelsAllInstances)
{
    // A pre-set caller stop flag must be relayed to every racing
    // instance: the hard pigeonhole below would otherwise burn
    // CPU for a long time before answering.
    PortfolioSolver solver(withInstances(2, 1, false));
    const int holes = 9, pigeons = 10;
    std::vector<std::vector<Var>> at(pigeons,
                                     std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = solver.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(at[p][h]));
        solver.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                solver.addClause(
                    {~mkLit(at[p][h]), ~mkLit(at[q][h])});
    std::atomic<bool> stop{true};
    Budget budget;
    budget.stopFlag = &stop;
    EXPECT_EQ(solver.solve({}, budget), SolveStatus::Unknown);
}

TEST(PortfolioSolver, CallerStopFlagCancelsDeterministicMode)
{
    // Deterministic mode runs every instance to completion and
    // picks the winner by fixed precedence — so cancellation must
    // reach each instance through its own budget, not through the
    // racing watcher (which deterministic mode does not start).
    PortfolioSolver solver(withInstances(2, 2, true));
    const int holes = 9, pigeons = 10;
    std::vector<std::vector<Var>> at(pigeons,
                                     std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = solver.newVar();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(at[p][h]));
        solver.addClause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                solver.addClause(
                    {~mkLit(at[p][h]), ~mkLit(at[q][h])});
    std::atomic<bool> stop{true};
    Budget budget;
    budget.stopFlag = &stop;
    EXPECT_EQ(solver.solve({}, budget), SolveStatus::Unknown);
}

TEST(PortfolioSolver, CnfLoadsThroughSolverBase)
{
    const Cnf cnf = parseDimacs("p cnf 3 3\n"
                                "1 0\n"
                                "-1 2 0\n"
                                "-2 3 0\n");
    PortfolioSolver solver(withInstances(2, 1));
    ASSERT_TRUE(cnf.loadInto(solver));
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(Var{2}), LBool::True);
}

} // namespace
} // namespace fermihedral::sat
