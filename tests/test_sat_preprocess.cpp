/**
 * @file
 * Unit and property tests for the clause-database simplifier.
 *
 * The property suite runs random 3-SAT instances through
 * subsumption / self-subsuming resolution / bounded variable
 * elimination and checks (a) the SAT/UNSAT verdict agrees with the
 * unsimplified solver and (b) a model of the simplified formula,
 * extended by witness reconstruction, satisfies every original
 * clause — the contract EncodingModel::decode() depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sat/preprocess.h"
#include "sat/solver.h"

namespace fermihedral::sat {
namespace {

bool
modelSatisfies(const std::vector<std::vector<Lit>> &clauses,
               const std::vector<LBool> &model)
{
    for (const auto &clause : clauses) {
        bool satisfied = false;
        for (const Lit lit : clause) {
            const LBool v = model[litVar(lit)];
            if ((litSign(lit) ? -v : v) == LBool::True) {
                satisfied = true;
                break;
            }
        }
        if (!satisfied)
            return false;
    }
    return true;
}

TEST(Simplifier, SubsumedClauseIsRemoved)
{
    Simplifier simp(3);
    const Lit a = mkLit(0), b = mkLit(1), c = mkLit(2);
    simp.addClause({a, b});
    simp.addClause({a, b, c}); // subsumed by {a, b}
    simp.freeze(0);
    simp.freeze(1);
    simp.freeze(2);
    simp.run();
    EXPECT_EQ(simp.stats().subsumedClauses, 1u);
    EXPECT_EQ(simp.simplifiedClauses().size(), 1u);
}

TEST(Simplifier, SelfSubsumingResolutionStrengthens)
{
    // {a, b} and {~a, b, c}: resolving on a gives {b, c} which
    // subsumes {~a, b, c}, i.e. ~a is removed from it.
    Simplifier simp(3);
    const Lit a = mkLit(0), b = mkLit(1), c = mkLit(2);
    simp.addClause({a, b});
    simp.addClause({~a, b, c});
    for (Var v = 0; v < 3; ++v)
        simp.freeze(v);
    SimplifierOptions options;
    options.variableElimination = false;
    simp.run(options);
    EXPECT_EQ(simp.stats().strengthenedLiterals, 1u);
    const auto clauses = simp.simplifiedClauses();
    ASSERT_EQ(clauses.size(), 2u);
    for (const auto &clause : clauses)
        EXPECT_LE(clause.size(), 2u);
}

TEST(Simplifier, EliminatesTseitinAuxiliary)
{
    // y <-> a AND b, plus {y, c}: y is a classic BVE victim.
    Simplifier simp(4);
    const Lit a = mkLit(0), b = mkLit(1), y = mkLit(2),
              c = mkLit(3);
    simp.addClause({~y, a});
    simp.addClause({~y, b});
    simp.addClause({~a, ~b, y});
    simp.addClause({y, c});
    simp.freeze(0);
    simp.freeze(1);
    simp.freeze(3);
    simp.run();
    EXPECT_TRUE(simp.isEliminated(2));
    EXPECT_FALSE(simp.isEliminated(0));
    EXPECT_GE(simp.stats().eliminatedVariables, 1u);

    // A model over the survivors must reconstruct y correctly:
    // with a=1, b=1, c=0 the witness clause {y, c} is not
    // satisfied without y, so reconstruction must set y=1 (which
    // also satisfies y <-> a AND b).
    std::vector<LBool> model(4, LBool::Undef);
    model[0] = LBool::True;
    model[1] = LBool::True;
    model[3] = LBool::False;
    simp.reconstruct(model);
    EXPECT_EQ(model[2], LBool::True);
}

TEST(Simplifier, PureLiteralIsEliminated)
{
    Simplifier simp(3);
    const Lit a = mkLit(0), b = mkLit(1), c = mkLit(2);
    simp.addClause({a, b});
    simp.addClause({a, c});
    simp.freeze(1);
    simp.freeze(2);
    simp.run();
    // `a` only occurs positively: pure, eliminated with zero
    // resolvents, and both clauses disappear.
    EXPECT_TRUE(simp.isEliminated(0));
    EXPECT_EQ(simp.simplifiedClauses().size(), 0u);
    // With b and c false, only a=true satisfies the originals;
    // reconstruction must pick it.
    std::vector<LBool> model(3, LBool::Undef);
    model[1] = LBool::False;
    model[2] = LBool::False;
    simp.reconstruct(model);
    EXPECT_EQ(model[0], LBool::True);
}

TEST(Simplifier, ComplementaryPairCollapsesToUnit)
{
    // {a, b} and {a, ~b}: self-subsuming resolution leaves the
    // unit {a}, fixing a at the top level (not eliminating it).
    Simplifier simp(2);
    const Lit a = mkLit(0), b = mkLit(1);
    simp.addClause({a, b});
    simp.addClause({a, ~b});
    simp.freeze(0);
    simp.freeze(1);
    simp.run();
    EXPECT_FALSE(simp.isEliminated(0));
    const auto clauses = simp.simplifiedClauses();
    ASSERT_EQ(clauses.size(), 1u);
    ASSERT_EQ(clauses[0].size(), 1u);
    EXPECT_EQ(clauses[0][0], a);
}

TEST(Simplifier, FrozenVariablesSurvive)
{
    Simplifier simp(4);
    const Lit a = mkLit(0), b = mkLit(1), y = mkLit(2);
    simp.addClause({~y, a});
    simp.addClause({~y, b});
    simp.addClause({~a, ~b, y});
    for (Var v = 0; v < 4; ++v)
        simp.freeze(v);
    simp.run();
    for (Var v = 0; v < 4; ++v)
        EXPECT_FALSE(simp.isEliminated(v)) << "var " << v;
}

TEST(Simplifier, TopLevelUnitsFixAndReemit)
{
    Simplifier simp(3);
    const Lit a = mkLit(0), b = mkLit(1), c = mkLit(2);
    simp.addClause({a});
    simp.addClause({~a, b});
    simp.addClause({~b, c});
    for (Var v = 0; v < 3; ++v)
        simp.freeze(v);
    simp.run();
    EXPECT_FALSE(simp.inconsistent());
    EXPECT_EQ(simp.stats().fixedVariables, 3u);
    // The whole chain propagates: three units survive.
    const auto clauses = simp.simplifiedClauses();
    ASSERT_EQ(clauses.size(), 3u);
    for (const auto &clause : clauses)
        EXPECT_EQ(clause.size(), 1u);
}

TEST(Simplifier, ContradictionIsDetected)
{
    Simplifier simp(2);
    const Lit a = mkLit(0), b = mkLit(1);
    simp.addClause({a});
    simp.addClause({~a, b});
    simp.addClause({~a, ~b});
    simp.run();
    EXPECT_TRUE(simp.inconsistent());
}

/** Random 3-SAT instances at mixed clause/variable ratios. */
struct PreprocessParam
{
    int numVars;
    int ratioTimes10;
    bool withFrozen;
};

class SimplifierProperty
    : public ::testing::TestWithParam<PreprocessParam>
{
};

TEST_P(SimplifierProperty, EquivalentToUnsimplifiedSolve)
{
    const auto param = GetParam();
    Rng rng(4200 + param.numVars * 100 + param.ratioTimes10 +
            (param.withFrozen ? 7 : 0));
    const int num_clauses =
        param.numVars * param.ratioTimes10 / 10;

    for (int instance = 0; instance < 25; ++instance) {
        std::vector<std::vector<Lit>> cnf;
        for (int c = 0; c < num_clauses; ++c) {
            std::vector<Lit> clause;
            for (int k = 0; k < 3; ++k) {
                const Var var = static_cast<Var>(
                    rng.nextBelow(param.numVars));
                clause.push_back(mkLit(var, rng.nextBool()));
            }
            cnf.push_back(clause);
        }

        // Reference verdict from the unsimplified solver.
        Solver reference;
        for (int v = 0; v < param.numVars; ++v)
            reference.newVar();
        for (const auto &clause : cnf)
            reference.addClause(clause);
        const SolveStatus expected = reference.solve();

        // Simplify, solve the simplified formula, reconstruct.
        Simplifier simp(param.numVars);
        for (const auto &clause : cnf)
            simp.addClause(clause);
        if (param.withFrozen) {
            // Freeze a random half of the variables.
            for (int v = 0; v < param.numVars; ++v) {
                if (rng.nextBool())
                    simp.freeze(v);
            }
        }
        simp.run();

        if (simp.inconsistent()) {
            EXPECT_EQ(expected, SolveStatus::Unsat)
                << "instance " << instance;
            continue;
        }
        Solver solver;
        for (int v = 0; v < param.numVars; ++v)
            solver.newVar();
        bool consistent = true;
        for (const auto &clause : simp.simplifiedClauses())
            consistent = solver.addClause(clause) && consistent;
        const SolveStatus simplified =
            consistent ? solver.solve() : SolveStatus::Unsat;
        EXPECT_EQ(simplified, expected)
            << "instance " << instance;

        if (simplified == SolveStatus::Sat) {
            std::vector<LBool> model(param.numVars);
            for (int v = 0; v < param.numVars; ++v)
                model[v] = solver.modelValue(v);
            simp.reconstruct(model);
            EXPECT_TRUE(modelSatisfies(cnf, model))
                << "instance " << instance
                << ": reconstructed model violates the original "
                   "formula";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, SimplifierProperty,
    ::testing::Values(PreprocessParam{8, 30, false},
                      PreprocessParam{8, 43, true},
                      PreprocessParam{12, 40, false},
                      PreprocessParam{12, 45, true},
                      PreprocessParam{16, 43, false},
                      PreprocessParam{16, 50, true},
                      PreprocessParam{20, 42, true}));

} // namespace
} // namespace fermihedral::sat
