/**
 * @file
 * Unit and property tests for the CDCL SAT solver.
 *
 * The property suite cross-checks SAT/UNSAT answers on random 3-SAT
 * instances against exhaustive enumeration, which exercises
 * propagation, conflict analysis, learning and restarts end to end.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sat/solver.h"

namespace fermihedral::sat {
namespace {

/** Exhaustive truth-table check of a CNF over <= 24 variables. */
bool
bruteForceSat(std::size_t num_vars,
              const std::vector<std::vector<Lit>> &clauses)
{
    for (std::uint64_t assignment = 0;
         assignment < (std::uint64_t{1} << num_vars); ++assignment) {
        bool all_satisfied = true;
        for (const auto &clause : clauses) {
            bool satisfied = false;
            for (const Lit lit : clause) {
                const bool value =
                    (assignment >> litVar(lit)) & 1;
                if (value != litSign(lit)) {
                    satisfied = true;
                    break;
                }
            }
            if (!satisfied) {
                all_satisfied = false;
                break;
            }
        }
        if (all_satisfied)
            return true;
    }
    return false;
}

TEST(SatSolver, EmptyFormulaIsSat)
{
    Solver solver;
    solver.newVar();
    EXPECT_EQ(solver.solve(), SolveStatus::Sat);
}

TEST(SatSolver, UnitClausesPropagate)
{
    Solver solver;
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addUnit(mkLit(a));
    solver.addBinary(~mkLit(a), mkLit(b));
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(a), LBool::True);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
}

TEST(SatSolver, ContradictoryUnitsAreUnsat)
{
    Solver solver;
    const Var a = solver.newVar();
    solver.addUnit(mkLit(a));
    solver.addUnit(~mkLit(a));
    EXPECT_TRUE(solver.inconsistent());
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(SatSolver, TautologyClausesAreIgnored)
{
    Solver solver;
    const Var a = solver.newVar();
    solver.addClause({mkLit(a), ~mkLit(a)});
    EXPECT_EQ(solver.numClauses(), 0u);
    EXPECT_EQ(solver.solve(), SolveStatus::Sat);
}

TEST(SatSolver, XorChainForcesUniqueModel)
{
    // a xor b = 1, a = 1 ==> b = 0, encoded directly in CNF.
    Solver solver;
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addBinary(mkLit(a), mkLit(b));
    solver.addBinary(~mkLit(a), ~mkLit(b));
    solver.addUnit(mkLit(a));
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(b), LBool::False);
}

/** Pigeonhole principle PHP(n+1, n): always UNSAT, needs search. */
void
addPigeonhole(Solver &solver, int holes)
{
    const int pigeons = holes + 1;
    std::vector<std::vector<Var>> at(
        pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p)
        for (int h = 0; h < holes; ++h)
            at[p][h] = solver.newVar();
    // Every pigeon sits somewhere.
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h)
            clause.push_back(mkLit(at[p][h]));
        solver.addClause(clause);
    }
    // No two pigeons share a hole.
    for (int h = 0; h < holes; ++h)
        for (int p = 0; p < pigeons; ++p)
            for (int q = p + 1; q < pigeons; ++q)
                solver.addBinary(~mkLit(at[p][h]),
                                 ~mkLit(at[q][h]));
}

TEST(SatSolver, PigeonholeIsUnsat)
{
    for (int holes : {2, 3, 4, 5}) {
        Solver solver;
        addPigeonhole(solver, holes);
        EXPECT_EQ(solver.solve(), SolveStatus::Unsat)
            << "PHP with " << holes << " holes";
    }
}

TEST(SatSolver, ConflictBudgetReturnsUnknown)
{
    Solver solver;
    addPigeonhole(solver, 8); // hard enough to exceed 10 conflicts
    Budget budget;
    budget.maxConflicts = 10;
    EXPECT_EQ(solver.solve({}, budget), SolveStatus::Unknown);
    // And the solver remains usable afterwards.
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(SatSolver, AssumptionsRestrictModels)
{
    Solver solver;
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addBinary(mkLit(a), mkLit(b));
    const Lit assume[] = {~mkLit(a)};
    ASSERT_EQ(solver.solve(assume), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(b), LBool::True);

    const Lit bad[] = {~mkLit(a), ~mkLit(b)};
    EXPECT_EQ(solver.solve(bad), SolveStatus::Unsat);

    // Assumptions are not permanent.
    EXPECT_EQ(solver.solve(), SolveStatus::Sat);
}

TEST(SatSolver, IncrementalClauseAddition)
{
    Solver solver;
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addBinary(mkLit(a), mkLit(b));
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    solver.addUnit(~mkLit(a));
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
    solver.addUnit(~mkLit(b));
    EXPECT_EQ(solver.solve(), SolveStatus::Unsat);
}

TEST(SatSolver, PolarityHintIsFollowedWhenFree)
{
    Solver solver;
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    solver.addBinary(mkLit(a), mkLit(b)); // either suffices
    solver.setPolarity(a, false);
    solver.setPolarity(b, true);
    ASSERT_EQ(solver.solve(), SolveStatus::Sat);
    EXPECT_EQ(solver.modelValue(a), LBool::False);
    EXPECT_EQ(solver.modelValue(b), LBool::True);
}

/** Random 3-SAT at a given clause/variable ratio (x10). */
struct RandomSatParam
{
    int numVars;
    int ratioTimes10;
};

class RandomSatProperty
    : public ::testing::TestWithParam<RandomSatParam>
{
};

TEST_P(RandomSatProperty, AgreesWithBruteForce)
{
    const auto param = GetParam();
    Rng rng(9000 + param.numVars * 100 + param.ratioTimes10);
    const int clauses = param.numVars * param.ratioTimes10 / 10;

    for (int instance = 0; instance < 20; ++instance) {
        Solver solver;
        std::vector<std::vector<Lit>> cnf;
        for (int v = 0; v < param.numVars; ++v)
            solver.newVar();
        for (int c = 0; c < clauses; ++c) {
            std::vector<Lit> clause;
            for (int k = 0; k < 3; ++k) {
                const Var var = static_cast<Var>(
                    rng.nextBelow(param.numVars));
                clause.push_back(mkLit(var, rng.nextBool()));
            }
            cnf.push_back(clause);
            solver.addClause(clause);
        }
        const bool expected =
            bruteForceSat(param.numVars, cnf);
        const SolveStatus status = solver.solve();
        EXPECT_EQ(status, expected ? SolveStatus::Sat
                                   : SolveStatus::Unsat)
            << "instance " << instance;

        if (status == SolveStatus::Sat) {
            // The produced model must actually satisfy the CNF.
            for (const auto &clause : cnf) {
                bool satisfied = false;
                for (const Lit lit : clause)
                    satisfied |=
                        solver.modelValue(lit) == LBool::True;
                EXPECT_TRUE(satisfied);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Instances, RandomSatProperty,
    ::testing::Values(RandomSatParam{6, 30}, RandomSatParam{8, 43},
                      RandomSatParam{10, 43}, RandomSatParam{12, 50},
                      RandomSatParam{14, 43},
                      RandomSatParam{16, 45}));

} // namespace
} // namespace fermihedral::sat
