/**
 * @file
 * Dedicated exercise of the solver invariant self-checks.
 *
 * Every Solver in this binary runs with SolverConfig::selfCheck on
 * (the same checks FERMIHEDRAL_SOLVER_CHECK compiles in
 * unconditionally — the CI fuzz-smoke job builds with the macro so
 * the compile-time path is covered there), driving checkInvariants()
 * through the interesting lifecycle boundaries: plain solves,
 * assumption solves, conflict-heavy UNSAT proofs, learnt-database
 * reduction, inprocessing, carry-over resets and arena garbage
 * collection. The VarHeap's own consistency probe (brokenSlot) is
 * unit-tested directly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sat/solver.h"
#include "sat/totalizer.h"
#include "sat/types.h"
#include "sat/var_heap.h"

namespace sat = fermihedral::sat;
using fermihedral::Rng;
using sat::mkLit;

namespace {

sat::SolverConfig
checkedConfig()
{
    sat::SolverConfig config;
    config.selfCheck = true;
    return config;
}

/** Random 3-SAT clauses over a checked solver's fresh variables. */
std::vector<sat::Var>
addRandom3Sat(sat::Solver &solver, Rng &rng, std::size_t num_vars,
              std::size_t num_clauses)
{
    std::vector<sat::Var> vars;
    for (std::size_t v = 0; v < num_vars; ++v)
        vars.push_back(solver.newVar());
    for (std::size_t c = 0; c < num_clauses; ++c) {
        std::vector<sat::Lit> clause;
        while (clause.size() < 3) {
            const sat::Var var =
                vars[rng.nextBelow(vars.size())];
            bool fresh = true;
            for (const sat::Lit lit : clause)
                fresh &= litVar(lit) != var;
            if (fresh)
                clause.push_back(mkLit(var, rng.nextBool()));
        }
        solver.addClause(clause);
    }
    return vars;
}

/** Pigeonhole principle PHP(holes+1, holes): UNSAT, conflict-rich. */
void
addPigeonhole(sat::Solver &solver, std::size_t holes)
{
    const std::size_t pigeons = holes + 1;
    std::vector<std::vector<sat::Var>> in(pigeons);
    for (std::size_t p = 0; p < pigeons; ++p)
        for (std::size_t h = 0; h < holes; ++h)
            in[p].push_back(solver.newVar());
    for (std::size_t p = 0; p < pigeons; ++p) {
        std::vector<sat::Lit> somewhere;
        for (std::size_t h = 0; h < holes; ++h)
            somewhere.push_back(mkLit(in[p][h]));
        solver.addClause(somewhere);
    }
    for (std::size_t h = 0; h < holes; ++h)
        for (std::size_t p = 0; p < pigeons; ++p)
            for (std::size_t q = p + 1; q < pigeons; ++q)
                solver.addClause({mkLit(in[p][h], true),
                                  mkLit(in[q][h], true)});
}

} // namespace

TEST(VarHeap, PopsInActivityOrder)
{
    sat::VarHeap heap;
    for (int i = 0; i < 16; ++i)
        heap.grow();
    heap.boost(3, 5.0);
    heap.boost(11, 9.0);
    heap.boost(7, 7.0);
    ASSERT_EQ(heap.brokenSlot(), -1);

    EXPECT_EQ(heap.pop(), 11);
    EXPECT_EQ(heap.pop(), 7);
    EXPECT_EQ(heap.pop(), 3);
    ASSERT_EQ(heap.brokenSlot(), -1);
    EXPECT_FALSE(heap.contains(11));

    // Re-insertion (the backtracking path) restores membership and
    // keeps the order consistent.
    heap.insert(11);
    EXPECT_TRUE(heap.contains(11));
    ASSERT_EQ(heap.brokenSlot(), -1);
    EXPECT_EQ(heap.pop(), 11);
}

TEST(VarHeap, BumpAndDecayKeepConsistency)
{
    sat::VarHeap heap(0.8);
    for (int i = 0; i < 64; ++i)
        heap.grow();
    Rng rng(42);
    for (int round = 0; round < 2000; ++round) {
        const auto var =
            static_cast<sat::Var>(rng.nextBelow(64));
        heap.bump(var);
        if (round % 3 == 0)
            heap.decay();
        if (round % 7 == 0 && !heap.empty()) {
            const sat::Var popped = heap.pop();
            heap.insert(popped);
        }
        ASSERT_EQ(heap.brokenSlot(), -1) << "round " << round;
    }
    // Pop everything: activities must come out non-increasing.
    double last = 1e300;
    while (!heap.empty()) {
        const sat::Var var = heap.pop();
        EXPECT_LE(heap.activity(var), last);
        last = heap.activity(var);
    }
}

TEST(VarHeap, LazyRescalePreservesOrder)
{
    sat::VarHeap heap(0.5); // aggressive decay -> fast growth
    for (int i = 0; i < 8; ++i)
        heap.grow();
    // Drive the increment past the 1e100 rescale threshold; 0.5
    // decay doubles it per round, so ~400 rounds overflow safely.
    for (int round = 0; round < 400; ++round) {
        heap.bump(static_cast<sat::Var>(round % 3));
        heap.decay();
        ASSERT_EQ(heap.brokenSlot(), -1);
    }
    // Rescaling must have kept every score finite and the most
    // recently favoured variables on top.
    for (int v = 0; v < 8; ++v)
        EXPECT_LT(heap.activity(v), 1e101);
    const sat::Var top = heap.pop();
    EXPECT_LT(top, 3);
    ASSERT_EQ(heap.brokenSlot(), -1);
}

TEST(SolverCheck, LifecycleBoundaries)
{
    sat::Solver solver(checkedConfig());
    Rng rng(7);
    const auto vars = addRandom3Sat(solver, rng, 30, 110);
    solver.checkInvariants();

    EXPECT_NE(solver.solve(), sat::SolveStatus::Unknown);
    solver.checkInvariants();

    EXPECT_TRUE(solver.inprocess() || solver.inconsistent());
    solver.checkInvariants();

    solver.clearLearnts();
    solver.checkInvariants();

    // Incremental growth plus assumption solves.
    addRandom3Sat(solver, rng, 10, 30);
    const std::vector<sat::Lit> assumptions = {
        mkLit(vars[0]), mkLit(vars[5], true)};
    EXPECT_NE(solver.solve(assumptions),
              sat::SolveStatus::Unknown);
    solver.checkInvariants();
}

TEST(SolverCheck, ConflictHeavyUnsatProof)
{
    // PHP(7,6) needs thousands of conflicts: analyze, backtracking,
    // restarts and learnt-DB reduction all run under the checks.
    sat::Solver solver(checkedConfig());
    addPigeonhole(solver, 6);
    EXPECT_EQ(solver.solve(), sat::SolveStatus::Unsat);
    EXPECT_GT(solver.stats().conflicts, 100u);
    solver.checkInvariants();
}

TEST(SolverCheck, GeometricRestartsAndRandomBranching)
{
    sat::SolverConfig config = checkedConfig();
    config.restartSchedule =
        sat::SolverConfig::Restarts::Geometric;
    config.randomBranchFreq = 0.1;
    config.randomizePhases = true;
    config.seed = 99;
    sat::Solver solver(config);
    addPigeonhole(solver, 5);
    EXPECT_EQ(solver.solve(), sat::SolveStatus::Unsat);
    solver.checkInvariants();
}

TEST(SolverCheck, GarbageCollectionReclaimsSubsumedWaste)
{
    sat::Solver solver(checkedConfig());
    const sat::Var a = solver.newVar();
    const sat::Var b = solver.newVar();
    std::vector<sat::Var> pad;
    for (int i = 0; i < 2000; ++i)
        pad.push_back(solver.newVar());
    // One binary clause subsumes every padded ternary below: the
    // subsumption pass retires them all, which crosses the
    // quarter-of-arena waste threshold and forces a collection.
    solver.addClause({mkLit(a), mkLit(b)});
    for (const sat::Var p : pad)
        solver.addClause({mkLit(a), mkLit(b), mkLit(p)});

    const std::size_t before = solver.arenaWords();
    EXPECT_TRUE(solver.inprocess());
    solver.checkInvariants();

    EXPECT_GE(solver.stats().inprocessings, 1u);
    EXPECT_GT(solver.stats().inprocessSubsumed, 1000u);
    EXPECT_GE(solver.stats().garbageCollects, 1u);
    EXPECT_GT(solver.stats().reclaimedWords, 0u);
    EXPECT_LT(solver.arenaWords(), before);

    EXPECT_EQ(solver.solve(), sat::SolveStatus::Sat);
    solver.checkInvariants();
}

TEST(SolverCheck, TotalizerDescentUnderChecks)
{
    // Mimic the descent loop: build a totalizer, then tighten the
    // bound one step at a time with inprocessing in between, all
    // with invariant checks armed.
    sat::Solver solver(checkedConfig());
    std::vector<sat::Lit> inputs;
    for (int i = 0; i < 10; ++i)
        inputs.push_back(mkLit(solver.newVar()));
    sat::Totalizer totalizer(solver, inputs, 10);
    // Forcing three inputs true bounds the reachable minimum.
    solver.addClause({inputs[1]});
    solver.addClause({inputs[4]});
    solver.addClause({inputs[7]});

    std::size_t bound = totalizer.width() - 1;
    std::size_t sat_steps = 0;
    while (true) {
        totalizer.boundAtMost(bound);
        const sat::SolveStatus status = solver.solve();
        solver.checkInvariants();
        if (status != sat::SolveStatus::Sat)
            break;
        ++sat_steps;
        std::size_t count = 0;
        for (const sat::Lit lit : inputs)
            count += solver.modelValue(lit) == sat::LBool::True;
        EXPECT_LE(count, bound);
        if (bound == 0 || count == 0)
            break;
        bound = count - 1;
        EXPECT_TRUE(solver.inprocess());
        solver.checkInvariants();
    }
    EXPECT_GE(sat_steps, 1u);
    // Three inputs are forced true, so the descent bottoms out
    // exactly there: at-most-2 must be refuted.
    EXPECT_TRUE(solver.inconsistent() ||
                solver.solve() == sat::SolveStatus::Unsat);
}
