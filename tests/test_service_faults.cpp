/**
 * @file
 * The fault-tolerance suite for the serving core: the failpoint
 * registry itself, deadline/cancellation degradation through the
 * Compiler and CompilerService, admission control and coalescing,
 * the CRC-guarded disk cache under injected write/read faults, and
 * a mixed-traffic stress run with several failpoints armed at once
 * (scaled by FERMIHEDRAL_FAULT_ITERATIONS; the CI fault-injection
 * job runs it 100 iterations under ASan/UBSan and archives
 * metricsJson via FERMIHEDRAL_FAULT_METRICS).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <unistd.h>

#include "api/serialize.h"
#include "api/service.h"
#include "api/strategy_registry.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "encodings/linear.h"

namespace fermihedral::api {
namespace {

CompilationRequest
fastRequest(std::size_t modes, const std::string &strategy)
{
    CompilationRequest request;
    request.modes = modes;
    request.strategy = strategy;
    request.stepTimeoutSeconds = 10.0;
    request.totalTimeoutSeconds = 30.0;
    return request;
}

/** A fresh scratch directory under the system temp path. */
class TempDir
{
  public:
    explicit TempDir(const char *tag)
        : dir(std::filesystem::temp_directory_path() /
              (std::string("fermihedral-") + tag + "-" +
               std::to_string(::getpid())))
    {
        std::filesystem::remove_all(dir);
    }

    ~TempDir() { std::filesystem::remove_all(dir); }

    std::string path() const { return dir.string(); }

  private:
    std::filesystem::path dir;
};

/** Spin (politely) until `predicate` holds; fail after 30 s. */
template <typename Predicate>
void
waitFor(Predicate &&predicate, const char *what)
{
    Timer timer;
    while (!predicate()) {
        if (timer.seconds() > 30.0) {
            FAIL() << "timed out waiting for: " << what;
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/** Shared control for the blocking test strategy below. */
struct BlockerControl
{
    std::atomic<int> entered{0};
    std::atomic<int> executions{0};
    std::atomic<bool> release{false};

    void
    reset()
    {
        entered = 0;
        executions = 0;
        release = false;
    }
};

BlockerControl &
blocker()
{
    static BlockerControl control;
    return control;
}

/**
 * A strategy that parks inside search() until released — the lever
 * the admission-control and coalescing tests use to hold the
 * dispatcher in a known state.
 */
class BlockingParityStrategy final : public EncodingStrategy
{
  public:
    SearchOutcome
    search(const CompilationRequest &request) const override
    {
        auto &control = blocker();
        control.entered.fetch_add(1);
        control.executions.fetch_add(1);
        while (!control.release.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        SearchOutcome outcome;
        outcome.encoding = enc::parity(request.resolvedModes());
        outcome.cost = outcome.encoding.totalWeight();
        outcome.baselineCost =
            enc::bravyiKitaev(request.resolvedModes())
                .totalWeight();
        return outcome;
    }
};

void
ensureBlockerRegistered()
{
    if (!strategyRegistered("test-blocker")) {
        registerStrategy("test-blocker", [] {
            return std::make_unique<BlockingParityStrategy>();
        });
    }
}

// --- the failpoint registry itself ---------------------------------

TEST(Failpoint, SpecsFireDeterministically)
{
    failpoint::disarmAll();
    EXPECT_FALSE(failpoint::fire("test.fp"));

    failpoint::arm("test.fp", "always");
    EXPECT_TRUE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::fire("test.fp"));

    failpoint::arm("test.fp", "once");
    EXPECT_TRUE(failpoint::fire("test.fp"));
    EXPECT_FALSE(failpoint::fire("test.fp"));

    failpoint::arm("test.fp", "times:2");
    EXPECT_TRUE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::fire("test.fp"));
    EXPECT_FALSE(failpoint::fire("test.fp"));

    failpoint::arm("test.fp", "after:2");
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::fire("test.fp"));

    failpoint::arm("test.fp", "every:3");
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::fire("test.fp"));
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::fire("test.fp"));
    const auto counts = failpoint::counts("test.fp");
    EXPECT_EQ(counts.evaluations, 6u);
    EXPECT_EQ(counts.fires, 2u);

    failpoint::arm("test.fp", "off");
    EXPECT_FALSE(failpoint::fire("test.fp"));
    EXPECT_TRUE(failpoint::armedNames().empty());
}

TEST(Failpoint, SpecListsParseAndMalformedSpecsAreFatal)
{
    failpoint::disarmAll();
    failpoint::armFromSpec("a.b=once,c.d=every:2");
    EXPECT_EQ(failpoint::armedNames(),
              (std::vector<std::string>{"a.b", "c.d"}));
    EXPECT_THROW(failpoint::arm("x", "sometimes"), FatalError);
    EXPECT_THROW(failpoint::arm("x", "times:"), FatalError);
    EXPECT_THROW(failpoint::arm("x", "every:0"), FatalError);
    EXPECT_THROW(failpoint::armFromSpec("missing-equals"),
                 FatalError);
    failpoint::disarmAll();
    EXPECT_TRUE(failpoint::armedNames().empty());
}

// --- deadlines and cancellation ------------------------------------

TEST(ServiceFaults, PreCancelledRequestDegradesToBaseline)
{
    CompilerService service;
    CompilationRequest request = fastRequest(4, "sat");
    request.cancellation.requestCancel();
    const auto result = service.compile(request);
    EXPECT_EQ(result.status, ResultStatus::Cancelled);
    EXPECT_TRUE(result.validation.valid());
    EXPECT_EQ(result.encoding.majoranas,
              enc::bravyiKitaev(4).majoranas);
    EXPECT_EQ(result.satCalls, 0u);
    // The baseline answer never touched the cache.
    EXPECT_EQ(service.cacheStats().computes, 0u);
    EXPECT_EQ(service.serviceStats().cancelled, 1u);
}

TEST(ServiceFaults, CancellationStopsARunningSearch)
{
    CompilerService service;
    CompilationRequest request = fastRequest(6, "sat");
    request.stepTimeoutSeconds = 600.0;
    request.totalTimeoutSeconds = 600.0;
    const CancellationToken token = request.cancellation;

    Timer timer;
    auto future = service.submit(std::move(request));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token.requestCancel();
    const auto result = future.get();
    // The 600 s budget must not run: the stop flag reaches the SAT
    // budget poll and the search returns its best-so-far encoding.
    EXPECT_EQ(result.status, ResultStatus::Cancelled);
    EXPECT_TRUE(result.validation.valid());
    EXPECT_LE(result.cost, result.baselineCost);
    EXPECT_LT(timer.seconds(), 60.0);
    EXPECT_EQ(service.serviceStats().cancelled, 1u);
}

TEST(ServiceFaults, DeadlineDegradesAndNeverCaches)
{
    CompilerService service;
    CompilationRequest request = fastRequest(3, "sat");
    request.deadlineSeconds = 1e-9;
    const auto degraded = service.compile(request);
    EXPECT_EQ(degraded.status, ResultStatus::DeadlineExceeded);
    EXPECT_TRUE(degraded.validation.valid());
    EXPECT_LE(degraded.cost, degraded.baselineCost);
    EXPECT_FALSE(degraded.fromCache);
    EXPECT_EQ(service.serviceStats().degraded, 1u);

    // Degraded results are never cached: the same spec with a
    // healthy budget recomputes at full fidelity, and only that
    // result enters the cache.
    const auto healthy = service.compile(fastRequest(3, "sat"));
    EXPECT_EQ(healthy.status, ResultStatus::Ok);
    EXPECT_FALSE(healthy.fromCache);
    EXPECT_TRUE(service.compile(fastRequest(3, "sat")).fromCache);
}

TEST(ServiceFaults, DeadlineExpiresWhileQueued)
{
    ensureBlockerRegistered();
    blocker().reset();
    ServiceOptions options;
    options.threads = 1;
    options.cacheCapacity = 0;
    CompilerService service(options);

    auto blocked = service.submit(fastRequest(3, "test-blocker"));
    waitFor([] { return blocker().entered.load() >= 1; },
            "dispatcher to enter the blocking strategy");

    // The deadline clock starts at submit(); this request spends
    // more than its whole deadline behind the blocker.
    CompilationRequest request = fastRequest(3, "sat");
    request.deadlineSeconds = 0.05;
    auto future = service.submit(std::move(request));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    blocker().release = true;

    EXPECT_EQ(blocked.get().status, ResultStatus::Ok);
    const auto result = future.get();
    EXPECT_EQ(result.status, ResultStatus::DeadlineExceeded);
    EXPECT_NE(result.statusMessage.find("queued"),
              std::string::npos)
        << result.statusMessage;
    EXPECT_TRUE(result.validation.valid());
    EXPECT_EQ(result.satCalls, 0u);
}

TEST(ServiceFaults, DeadlineHitIsDeterministic)
{
    // Two identical deadline-bound runs in deterministic mode must
    // degrade to the same encoding — the anytime answer is part of
    // the deterministic contract, not a race artifact.
    Compiler compiler;
    CompilationRequest request = fastRequest(4, "sat");
    request.deadlineSeconds = 1e-9;
    request.deterministic = true;
    const auto first = compiler.compile(request);
    const auto second = compiler.compile(request);
    EXPECT_EQ(first.status, ResultStatus::DeadlineExceeded);
    EXPECT_EQ(second.status, ResultStatus::DeadlineExceeded);
    EXPECT_EQ(first.encoding.majoranas, second.encoding.majoranas);
    EXPECT_EQ(first.cost, second.cost);
}

TEST(ServiceFaults, DeadlineBoundedLargeRequestServesValidEncoding)
{
    // Fig. 7 scale: N = 6 takes minutes to prove optimal, but a
    // deadline-bound request must come back almost immediately with
    // a valid (baseline-or-better) encoding.
    Compiler compiler;
    CompilationRequest request = fastRequest(6, "sat");
    request.stepTimeoutSeconds = 60.0;
    request.totalTimeoutSeconds = 60.0;
    request.deadlineSeconds = 0.25;
    Timer timer;
    const auto result = compiler.compile(request);
    EXPECT_EQ(result.status, ResultStatus::DeadlineExceeded);
    EXPECT_TRUE(result.validation.valid());
    EXPECT_LE(result.cost, result.baselineCost);
    EXPECT_LT(timer.seconds(), 30.0);
}

// --- admission control and coalescing ------------------------------

TEST(ServiceFaults, FullQueueShedsNewestRequest)
{
    ensureBlockerRegistered();
    blocker().reset();
    ServiceOptions options;
    options.threads = 1;
    options.cacheCapacity = 0;
    options.maxQueueDepth = 2;
    CompilerService service(options);

    // Hold the dispatcher inside the blocking strategy, then fill
    // the queue to its depth; the next submit must shed.
    auto blocked = service.submit(fastRequest(3, "test-blocker"));
    waitFor([] { return blocker().entered.load() >= 1; },
            "dispatcher to enter the blocking strategy");
    auto a = service.submit(fastRequest(3, "jordan-wigner"));
    auto b = service.submit(fastRequest(4, "jordan-wigner"));
    auto shed = service.submit(fastRequest(5, "jordan-wigner"));

    const auto shedResult = shed.get(); // ready immediately
    EXPECT_EQ(shedResult.status, ResultStatus::Shed);
    EXPECT_NE(shedResult.statusMessage.find("queue full"),
              std::string::npos)
        << shedResult.statusMessage;
    EXPECT_TRUE(shedResult.encoding.majoranas.empty());

    blocker().release = true;
    EXPECT_EQ(blocked.get().status, ResultStatus::Ok);
    EXPECT_EQ(a.get().status, ResultStatus::Ok);
    EXPECT_EQ(b.get().status, ResultStatus::Ok);

    const auto stats = service.serviceStats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.shed, 1u);
    EXPECT_EQ(stats.ok, 3u);
}

TEST(ServiceFaults, IdenticalInflightRequestsComputeOnce)
{
    ensureBlockerRegistered();
    blocker().reset();
    ServiceOptions options;
    options.threads = 4;
    CompilerService service(options);

    std::vector<std::future<CompilationResult>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(
            service.submit(fastRequest(4, "test-blocker")));
    waitFor([] { return blocker().entered.load() >= 1; },
            "a coalescing leader to start the search");
    // Give the followers time to attach to the in-flight leader
    // (or to land in a later batch and hit the cache — both fine).
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    blocker().release = true;

    for (auto &future : futures) {
        const auto result = future.get();
        EXPECT_EQ(result.status, ResultStatus::Ok);
        EXPECT_EQ(result.encoding.majoranas,
                  enc::parity(4).majoranas);
    }
    // The acceptance bar: identical concurrent specs ran the
    // strategy exactly once; everyone else shared it.
    EXPECT_EQ(blocker().executions.load(), 1);
    EXPECT_EQ(service.cacheStats().computes, 1u);
    EXPECT_EQ(service.serviceStats().coalesced +
                  service.cacheStats().hits,
              3u);
    EXPECT_EQ(service.serviceStats().ok, 4u);
}

// --- the disk cache under injected faults --------------------------

TEST(ServiceFaults, TornWriteIsRejectedByCrcOnRead)
{
    failpoint::disarmAll();
    TempDir dir("fp-torn");
    ServiceOptions options;
    options.diskCachePath = dir.path();
    const auto request = fastRequest(2, "sat");

    failpoint::arm("service.cache.write.torn", "always");
    std::string cold;
    {
        CompilerService service(options);
        cold = serializeResult(service.compile(request));
    }
    failpoint::disarmAll();

    // The torn entry has an intact header and half a payload; the
    // CRC must reject it, the service recomputes and heals it.
    {
        CompilerService service(options);
        const auto recomputed = service.compile(request);
        EXPECT_FALSE(recomputed.fromCache);
        EXPECT_EQ(service.cacheStats().corrupted, 1u);
        EXPECT_EQ(serializeResult(recomputed), cold);
    }
    CompilerService fresh(options);
    EXPECT_TRUE(fresh.compile(request).fromCache);
}

TEST(ServiceFaults, InjectedDiskFullPublishesNothing)
{
    failpoint::disarmAll();
    TempDir dir("fp-enospc");
    ServiceOptions options;
    options.diskCachePath = dir.path();
    const auto request = fastRequest(2, "sat");

    failpoint::arm("service.cache.write.enospc", "always");
    {
        CompilerService service(options);
        EXPECT_EQ(service.compile(request).status,
                  ResultStatus::Ok);
    }
    failpoint::disarmAll();

    // No entry and no leftover temp file — the failed write left
    // the store exactly as it found it.
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path())) {
        (void)entry;
        ++files;
    }
    EXPECT_EQ(files, 0u);
    CompilerService fresh(options);
    const auto recomputed = fresh.compile(request);
    EXPECT_FALSE(recomputed.fromCache);
    EXPECT_EQ(fresh.cacheStats().corrupted, 0u);
}

TEST(ServiceFaults, ReadCorruptionIsCountedAndHealed)
{
    failpoint::disarmAll();
    TempDir dir("fp-read");
    ServiceOptions options;
    options.diskCachePath = dir.path();
    const auto request = fastRequest(2, "sat");

    std::string cold;
    {
        CompilerService service(options);
        cold = serializeResult(service.compile(request));
    }
    failpoint::arm("service.cache.read.corrupt", "once");
    {
        CompilerService service(options);
        const auto recomputed = service.compile(request);
        EXPECT_FALSE(recomputed.fromCache);
        EXPECT_EQ(service.cacheStats().corrupted, 1u);
        EXPECT_EQ(serializeResult(recomputed), cold);
    }
    failpoint::disarmAll();
    CompilerService fresh(options);
    EXPECT_TRUE(fresh.compile(request).fromCache);
    EXPECT_EQ(fresh.cacheStats().corrupted, 0u);
}

// --- solver and dispatcher failpoints ------------------------------

TEST(ServiceFaults, ForcedBudgetExpiryStillYieldsAValidEncoding)
{
    failpoint::disarmAll();
    failpoint::arm("sat.budget.expire", "always");
    Compiler compiler;
    const auto result = compiler.compile(fastRequest(3, "sat"));
    failpoint::disarmAll();
    // Every SAT call returned Unknown instantly; without a deadline
    // that is just an exhausted budget — an anytime Ok answer.
    EXPECT_EQ(result.status, ResultStatus::Ok);
    EXPECT_TRUE(result.validation.valid());
    EXPECT_LE(result.cost, result.baselineCost);
}

TEST(ServiceFaults, DispatchFailpointSurfacesAsErrorResult)
{
    failpoint::disarmAll();
    failpoint::arm("service.dispatch.fail", "always");
    CompilerService service;
    auto future = service.submit(fastRequest(3, "jordan-wigner"));
    const auto result = future.get();
    failpoint::disarmAll();
    EXPECT_EQ(result.status, ResultStatus::Error);
    EXPECT_NE(result.statusMessage.find("service.dispatch.fail"),
              std::string::npos)
        << result.statusMessage;
    EXPECT_EQ(service.serviceStats().errors, 1u);
}

// --- mixed traffic under several armed failpoints ------------------

TEST(ServiceFaults, MixedTrafficUnderArmedFailpointsStaysConsistent)
{
    failpoint::disarmAll();
    TempDir dir("fp-stress");
    ServiceOptions options;
    options.threads = 4;
    options.cacheCapacity = 8;
    options.diskCachePath = dir.path();
    options.maxQueueDepth = 32;

    failpoint::armFromSpec(
        "service.cache.write.torn=every:3,"
        "service.cache.write.enospc=every:5,"
        "service.cache.read.corrupt=every:4,"
        "service.dispatch.fail=every:7,"
        "sat.budget.expire=every:50");

    std::size_t iterations = 10;
    if (const char *env =
            std::getenv("FERMIHEDRAL_FAULT_ITERATIONS"))
        iterations = static_cast<std::size_t>(
            std::strtoul(env, nullptr, 10));

    const char *closedForm[] = {"jordan-wigner", "bravyi-kitaev",
                                "parity", "ternary-tree"};
    std::size_t ok = 0, deadline = 0, cancelled = 0, shed = 0,
                errors = 0;
    std::size_t submitted = 0;
    {
        CompilerService service(options);
        std::vector<std::future<CompilationResult>> futures;
        for (std::size_t i = 0; i < iterations; ++i) {
            // Warm/cold closed-form churn across a few specs.
            futures.push_back(service.submit(
                fastRequest(3 + i % 4, closedForm[i % 4])));
            // A SAT request under a tight (sometimes impossible)
            // deadline.
            CompilationRequest bounded =
                fastRequest(2 + i % 2, "sat");
            bounded.stepTimeoutSeconds = 0.2;
            bounded.totalTimeoutSeconds = 0.2;
            bounded.deadlineSeconds = (i % 3 == 0) ? 1e-6 : 0.15;
            futures.push_back(service.submit(std::move(bounded)));
            // A request cancelled before it ever runs.
            CompilationRequest dropped = fastRequest(3, "sat");
            dropped.stepTimeoutSeconds = 0.2;
            dropped.totalTimeoutSeconds = 0.2;
            dropped.cancellation.requestCancel();
            futures.push_back(service.submit(std::move(dropped)));
            // A synchronous caller-thread compile interleaved with
            // the async traffic — never shed, and it keeps the
            // cache (and its armed failpoints) busy even when the
            // queue is rejecting.
            const auto sync = service.compile(fastRequest(
                3 + (i + 1) % 4, closedForm[(i + 1) % 4]));
            EXPECT_NE(sync.status, ResultStatus::Shed);
            switch (sync.status) {
              case ResultStatus::Ok: ++ok; break;
              case ResultStatus::DeadlineExceeded:
                  ++deadline;
                  break;
              case ResultStatus::Cancelled: ++cancelled; break;
              case ResultStatus::Shed: ++shed; break;
              case ResultStatus::Error: ++errors; break;
            }
        }
        submitted = futures.size() + iterations;

        for (auto &future : futures) {
            const auto result = future.get(); // must never throw
            switch (result.status) {
              case ResultStatus::Ok: ++ok; break;
              case ResultStatus::DeadlineExceeded:
                  ++deadline;
                  break;
              case ResultStatus::Cancelled: ++cancelled; break;
              case ResultStatus::Shed: ++shed; break;
              case ResultStatus::Error: ++errors; break;
            }
            if (result.status == ResultStatus::Shed) {
                EXPECT_TRUE(result.encoding.majoranas.empty());
            } else if (result.status == ResultStatus::Error) {
                EXPECT_NE(result.statusMessage.find(
                              "service.dispatch.fail"),
                          std::string::npos)
                    << result.statusMessage;
            } else {
                // Ok and every degraded status still carry a
                // valid encoding.
                EXPECT_TRUE(result.validation.valid())
                    << resultStatusName(result.status);
            }
        }

        // Per-status accounting closes: every accepted request is
        // counted exactly once, under exactly its final status.
        const auto stats = service.serviceStats();
        EXPECT_EQ(stats.submitted, submitted);
        EXPECT_EQ(stats.ok, ok);
        EXPECT_EQ(stats.deadlineExceeded, deadline);
        EXPECT_EQ(stats.cancelled, cancelled);
        EXPECT_EQ(stats.shed, shed);
        EXPECT_EQ(stats.errors, errors);
        EXPECT_EQ(stats.ok + stats.deadlineExceeded +
                      stats.cancelled + stats.shed + stats.errors,
                  submitted);
    }
    failpoint::disarmAll();

    // The store was bombarded with torn and failed writes, but the
    // published files are all real entries (no temp leftovers) and
    // a fresh service serves every spec at full fidelity — torn
    // entries are rejected by the CRC and recomputed, silently.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir.path()))
        EXPECT_EQ(entry.path().extension(), ".fhc")
            << entry.path();
    CompilerService fresh(options);
    for (std::size_t i = 0; i < 4; ++i) {
        const auto healthy =
            fresh.compile(fastRequest(3 + i, closedForm[i]));
        EXPECT_EQ(healthy.status, ResultStatus::Ok);
        EXPECT_TRUE(healthy.validation.valid());
    }

    // CI archives the telemetry snapshot for the run.
    if (const char *path =
            std::getenv("FERMIHEDRAL_FAULT_METRICS")) {
        std::ofstream file(path);
        file << CompilerService::metricsJson() << "\n";
    }
}

} // namespace
} // namespace fermihedral::api
