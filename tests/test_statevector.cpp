/**
 * @file
 * Tests for the dense state-vector simulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/statevector.h"

namespace fermihedral::sim {
namespace {

using circuit::Gate;
using circuit::GateKind;

TEST(StateVector, StartsInZeroState)
{
    StateVector psi(3);
    EXPECT_EQ(psi.dimension(), 8u);
    EXPECT_NEAR(std::abs(psi.amplitudes()[0] - 1.0), 0.0, 1e-15);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-15);
}

TEST(StateVector, HadamardCreatesSuperposition)
{
    StateVector psi(1);
    psi.applyGate({GateKind::H, 0, 0, 0.0});
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(psi.amplitudes()[0] - r), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(psi.amplitudes()[1] - r), 0.0, 1e-12);
}

TEST(StateVector, PauliGateAlgebra)
{
    // HZH = X as an action on |0>.
    StateVector a(1), b(1);
    a.applyGate({GateKind::H, 0, 0, 0.0});
    a.applyGate({GateKind::Z, 0, 0, 0.0});
    a.applyGate({GateKind::H, 0, 0, 0.0});
    b.applyGate({GateKind::X, 0, 0, 0.0});
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(StateVector, SSquaredIsZ)
{
    StateVector a(1), b(1);
    a.applyGate({GateKind::H, 0, 0, 0.0});
    b.applyGate({GateKind::H, 0, 0, 0.0});
    a.applyGate({GateKind::S, 0, 0, 0.0});
    a.applyGate({GateKind::S, 0, 0, 0.0});
    b.applyGate({GateKind::Z, 0, 0, 0.0});
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(StateVector, RotationsMatchAxisDefinitions)
{
    // Rx(pi) |0> = -i |1>; Ry(pi) |0> = |1>; Rz leaves |0> alone.
    StateVector x(1);
    x.applyGate({GateKind::Rx, 0, 0, M_PI});
    EXPECT_NEAR(std::abs(x.amplitudes()[1] -
                         std::complex<double>(0, -1)),
                0.0, 1e-12);
    StateVector y(1);
    y.applyGate({GateKind::Ry, 0, 0, M_PI});
    EXPECT_NEAR(std::abs(y.amplitudes()[1] - 1.0), 0.0, 1e-12);
    StateVector z(1);
    z.applyGate({GateKind::Rz, 0, 0, 1.23});
    EXPECT_NEAR(std::norm(z.amplitudes()[0]), 1.0, 1e-12);
}

TEST(StateVector, CnotEntangles)
{
    StateVector psi(2);
    psi.applyGate({GateKind::H, 0, 0, 0.0});
    psi.applyGate({GateKind::Cnot, 0, 1, 0.0});
    // Bell state (|00> + |11>)/sqrt(2).
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(psi.amplitudes()[0] - r), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(psi.amplitudes()[3] - r), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(psi.amplitudes()[1]), 0.0, 1e-12);
}

TEST(StateVector, ApplyPauliMatchesGates)
{
    Rng rng(4);
    StateVector a(3), b(3);
    // Random product state.
    for (std::uint32_t q = 0; q < 3; ++q) {
        const double angle = rng.nextDouble(0, M_PI);
        a.applyGate({GateKind::Ry, q, 0, angle});
        b.applyGate({GateKind::Ry, q, 0, angle});
    }
    a.applyPauli(pauli::PauliString::fromLabel("XZY"));
    b.applyGate({GateKind::Y, 0, 0, 0.0});
    b.applyGate({GateKind::Z, 1, 0, 0.0});
    b.applyGate({GateKind::X, 2, 0, 0.0});
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12);
}

TEST(StateVector, ExpectationOfZOnBasisStates)
{
    StateVector psi(2);
    const auto zi = pauli::PauliString::fromLabel("ZI");
    const auto iz = pauli::PauliString::fromLabel("IZ");
    EXPECT_NEAR(psi.expectation(zi).real(), 1.0, 1e-12);
    psi.setBasisState(0b10); // qubit 1 set
    EXPECT_NEAR(psi.expectation(zi).real(), -1.0, 1e-12);
    EXPECT_NEAR(psi.expectation(iz).real(), 1.0, 1e-12);
}

TEST(StateVector, ExpectationOfSumIsLinear)
{
    StateVector psi(2);
    psi.applyGate({GateKind::H, 0, 0, 0.0});
    pauli::PauliSum sum(2);
    sum.add(0.5, pauli::PauliString::fromLabel("IZ")); // <IZ> = 0
    sum.add(2.0, pauli::PauliString::fromLabel("IX")); // <IX> = 1
    sum.add(3.0, pauli::PauliString::fromLabel("II"));
    EXPECT_NEAR(psi.expectation(sum), 5.0, 1e-12);
}

TEST(StateVector, SamplingFollowsBornRule)
{
    StateVector psi(1);
    psi.applyGate({GateKind::Ry, 0, 0, 2.0 * std::acos(
        std::sqrt(0.75))}); // P(0) = 0.75
    Rng rng(9);
    int zeros = 0;
    const int shots = 20000;
    for (int s = 0; s < shots; ++s)
        zeros += psi.sampleBasisState(rng) == 0;
    EXPECT_NEAR(zeros / double(shots), 0.75, 0.02);
}

TEST(StateVector, SpecializedKernelsMatchGenericUnitary)
{
    // Every specialized single-qubit kernel must compute exactly
    // what the generic 2x2 applyUnitary computes with that gate's
    // matrix, on random states.
    Rng rng(31);
    const GateKind kinds[] = {GateKind::H,  GateKind::X,
                              GateKind::Y,  GateKind::Z,
                              GateKind::S,  GateKind::Sdg,
                              GateKind::Rx, GateKind::Ry,
                              GateKind::Rz};
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t qubits = 1 + rng.nextBelow(4);
        std::vector<Amplitude> amps(std::size_t{1} << qubits);
        for (auto &amp : amps)
            amp = Amplitude(rng.nextGaussian(), rng.nextGaussian());
        StateVector base(qubits, amps);
        base.normalize();
        for (const GateKind kind : kinds) {
            Gate gate{kind,
                      static_cast<std::uint32_t>(
                          rng.nextBelow(qubits)),
                      0, 0.0};
            if (circuit::isRotation(kind))
                gate.angle = rng.nextDouble(-7.0, 7.0);
            StateVector specialized = base, generic = base;
            specialized.applyGate(gate);
            const auto m = circuit::singleQubitMatrix(gate);
            generic.applyUnitary(gate.qubit0, m.m00, m.m01, m.m10,
                                 m.m11);
            double distance = 0.0;
            for (std::size_t i = 0; i < generic.dimension(); ++i)
                distance +=
                    std::norm(specialized.amplitudes()[i] -
                              generic.amplitudes()[i]);
            EXPECT_LT(std::sqrt(distance), 1e-12)
                << "gate " << circuit::gateName(kind);
        }
    }
}

TEST(StateVector, CnotKernelMatchesFullScanReference)
{
    Rng rng(32);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t qubits = 2 + rng.nextBelow(4);
        std::vector<Amplitude> amps(std::size_t{1} << qubits);
        for (auto &amp : amps)
            amp = Amplitude(rng.nextGaussian(), rng.nextGaussian());
        const auto control = static_cast<std::uint32_t>(
            rng.nextBelow(qubits));
        auto target = static_cast<std::uint32_t>(
            rng.nextBelow(qubits - 1));
        if (target >= control)
            ++target;

        // Reference: scan all indices, swap the control=1 pairs.
        std::vector<Amplitude> expected = amps;
        const std::size_t cmask = std::size_t{1} << control;
        const std::size_t tmask = std::size_t{1} << target;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            if ((i & cmask) && !(i & tmask))
                std::swap(expected[i], expected[i | tmask]);
        }

        StateVector psi(qubits, amps);
        psi.applyCnot(control, target);
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(psi.amplitudes()[i], expected[i])
                << "index " << i << " control " << control
                << " target " << target;
    }
}

TEST(StateVector, SampleTableMatchesLinearScanBitForBit)
{
    Rng rng(33);
    StateVector psi(5);
    circuit::Circuit c(5);
    for (std::uint32_t q = 0; q < 5; ++q) {
        c.add(GateKind::H, q);
        c.add(GateKind::Rz, q, rng.nextDouble(0, 6));
    }
    c.addCnot(0, 3);
    c.addCnot(1, 4);
    psi.applyCircuit(c);

    const SampleTable table(psi);
    EXPECT_EQ(table.size(), psi.dimension());
    Rng rng_linear(77), rng_table(77);
    for (int s = 0; s < 2000; ++s) {
        EXPECT_EQ(table.sample(rng_table),
                  psi.sampleBasisState(rng_linear));
    }
}

TEST(StateVector, SampleTableFollowsBornRule)
{
    StateVector psi(1);
    psi.applyGate({GateKind::Ry, 0, 0,
                   2.0 * std::acos(std::sqrt(0.75))});
    const SampleTable table(psi);
    Rng rng(9);
    int zeros = 0;
    const int shots = 20000;
    for (int s = 0; s < shots; ++s)
        zeros += table.sample(rng) == 0;
    EXPECT_NEAR(zeros / double(shots), 0.75, 0.02);
}

TEST(StateVector, FastExpectationMatchesTermByTerm)
{
    // The grouped single-pass expectation must agree with the
    // per-string definition on random sums over random states.
    Rng rng(34);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t qubits = 1 + rng.nextBelow(5);
        std::vector<Amplitude> amps(std::size_t{1} << qubits);
        for (auto &amp : amps)
            amp = Amplitude(rng.nextGaussian(), rng.nextGaussian());
        StateVector psi(qubits, amps);
        psi.normalize();

        pauli::PauliSum h(qubits);
        const int terms = 1 + static_cast<int>(rng.nextBelow(12));
        for (int t = 0; t < terms; ++t) {
            pauli::PauliString p(qubits);
            for (std::size_t q = 0; q < qubits; ++q)
                p.setOp(q, static_cast<pauli::PauliOp>(
                               rng.nextBelow(4)));
            h.add(rng.nextGaussian(), p);
        }
        h.simplify();

        double per_term = 0.0;
        for (const auto &term : h.terms())
            per_term += (term.coefficient *
                         psi.expectation(term.string))
                            .real();
        EXPECT_NEAR(psi.expectation(h), per_term, 1e-10);
    }
}

TEST(StateVector, NormPreservedByCircuits)
{
    Rng rng(12);
    StateVector psi(4);
    circuit::Circuit c(4);
    for (int i = 0; i < 50; ++i) {
        const auto q = static_cast<std::uint32_t>(rng.nextBelow(4));
        switch (rng.nextBelow(4)) {
          case 0: c.add(GateKind::H, q); break;
          case 1: c.add(GateKind::Rz, q, rng.nextDouble(0, 6)); break;
          case 2: c.add(GateKind::S, q); break;
          default: {
            auto t = static_cast<std::uint32_t>(rng.nextBelow(3));
            if (t >= q)
                ++t;
            c.addCnot(q, t);
          }
        }
    }
    psi.applyCircuit(c);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-10);
}

} // namespace
} // namespace fermihedral::sim
