/**
 * @file
 * Tests for the telemetry layer: lock-free metric exactness under
 * concurrent hammering, histogram percentile edge cases, Chrome
 * trace JSON well-formedness, and the zero-allocation guarantee of
 * disabled instrumentation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

#include "common/json_writer.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/telemetry.h"

// --------------------------------------------------------------------
// Counting allocator: replaces the global operator new so the
// zero-allocation regression below can assert that disabled
// telemetry never touches the heap. Counting only — behaviour is
// unchanged for the rest of the binary.
// --------------------------------------------------------------------

namespace {
std::atomic<std::size_t> allocationCount{0};
}

void *
operator new(std::size_t size)
{
    allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *ptr) noexcept { std::free(ptr); }
void operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}
void operator delete[](void *ptr) noexcept { std::free(ptr); }
void operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

namespace fermihedral::telemetry {
namespace {

// --------------------------------------------------------------------
// Minimal recursive-descent JSON validator (syntax only), used to
// assert the exported documents are well-formed without trusting
// the writer that produced them.
// --------------------------------------------------------------------

class MiniJson
{
  public:
    static bool
    valid(std::string_view text)
    {
        MiniJson parser{text};
        parser.skipWs();
        if (!parser.parseValue())
            return false;
        parser.skipWs();
        return parser.pos == text.size();
    }

  private:
    explicit MiniJson(std::string_view text) : text(text) {}

    char
    peek() const
    {
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    parseLiteral(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    bool
    parseString()
    {
        if (!eat('"'))
            return false;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: not escaped
            if (c == '\\') {
                if (pos >= text.size())
                    return false;
                const char esc = text[pos++];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (!std::isxdigit(static_cast<unsigned char>(
                                peek())))
                            return false;
                        ++pos;
                    }
                } else if (esc != '"' && esc != '\\' &&
                           esc != '/' && esc != 'b' &&
                           esc != 'f' && esc != 'n' &&
                           esc != 'r' && esc != 't') {
                    return false;
                }
            }
        }
        return false; // unterminated
    }

    bool
    parseNumber()
    {
        const std::size_t start = pos;
        eat('-');
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos;
        if (eat('.')) {
            while (std::isdigit(
                static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            while (std::isdigit(
                static_cast<unsigned char>(peek())))
                ++pos;
        }
        return pos > start;
    }

    bool
    parseValue()
    {
        skipWs();
        switch (peek()) {
        case '{': {
            ++pos;
            skipWs();
            if (eat('}'))
                return true;
            for (;;) {
                skipWs();
                if (!parseString())
                    return false;
                skipWs();
                if (!eat(':'))
                    return false;
                if (!parseValue())
                    return false;
                skipWs();
                if (eat('}'))
                    return true;
                if (!eat(','))
                    return false;
            }
        }
        case '[': {
            ++pos;
            skipWs();
            if (eat(']'))
                return true;
            for (;;) {
                if (!parseValue())
                    return false;
                skipWs();
                if (eat(']'))
                    return true;
                if (!eat(','))
                    return false;
            }
        }
        case '"':
            return parseString();
        case 't':
            return parseLiteral("true");
        case 'f':
            return parseLiteral("false");
        case 'n':
            return parseLiteral("null");
        default:
            return parseNumber();
        }
    }

    std::string_view text;
    std::size_t pos = 0;
};

// --------------------------------------------------------------------
// Counters and gauges
// --------------------------------------------------------------------

TEST(TelemetryCounter, ConcurrentHammeringSumsExactly)
{
    MetricsRegistry registry;
    Counter &counter = registry.counter("test.hammer");
    const std::size_t iterations = 100000;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        counter.reset();
        ThreadPool pool(threads);
        pool.forEach(iterations, [&](std::size_t i) {
            counter.add();
            if (i % 10 == 0)
                counter.add(3);
        });
        EXPECT_EQ(counter.get(),
                  iterations + 3 * (iterations / 10))
            << threads << " threads";
    }
}

TEST(TelemetryGauge, ConcurrentDeltasSumExactly)
{
    MetricsRegistry registry;
    Gauge &gauge = registry.gauge("test.depth");
    ThreadPool pool(4);
    // +1 then -1 per index, plus one net +1 every 4th: the final
    // value is exact regardless of interleaving.
    pool.forEach(10000, [&](std::size_t i) {
        gauge.add(1);
        if (i % 4 != 0)
            gauge.add(-1);
    });
    EXPECT_EQ(gauge.get(), 2500);
    gauge.set(-7);
    EXPECT_EQ(gauge.get(), -7);
    gauge.reset();
    EXPECT_EQ(gauge.get(), 0);
}

// --------------------------------------------------------------------
// Histograms
// --------------------------------------------------------------------

TEST(TelemetryHistogram, ConcurrentRecordingIsExact)
{
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("test.latency");
    const std::size_t samples = 50000;
    ThreadPool pool(4);
    // Unit-valued samples: the CAS-accumulated double sum is exact
    // for integer totals far below 2^53.
    pool.forEach(samples, [&](std::size_t) {
        histogram.record(1.0);
    });
    const Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, samples);
    EXPECT_EQ(snap.sum, static_cast<double>(samples));
    EXPECT_EQ(snap.min, 1.0);
    EXPECT_EQ(snap.max, 1.0);
}

TEST(TelemetryHistogram, EmptyPercentilesAreZero)
{
    MetricsRegistry registry;
    const Histogram::Snapshot snap =
        registry.histogram("test.empty").snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.percentile(50.0), 0.0);
    EXPECT_EQ(snap.p99(), 0.0);
    EXPECT_EQ(snap.mean(), 0.0);
    EXPECT_EQ(snap.min, 0.0);
    EXPECT_EQ(snap.max, 0.0);
}

TEST(TelemetryHistogram, SingleSampleReportsItsValue)
{
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("test.single");
    histogram.record(0.42);
    const Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 1u);
    // Every percentile of a one-sample distribution is the sample:
    // interpolation must clamp to the observed min/max.
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), 0.42);
    EXPECT_DOUBLE_EQ(snap.p50(), 0.42);
    EXPECT_DOUBLE_EQ(snap.p99(), 0.42);
    EXPECT_DOUBLE_EQ(snap.percentile(100.0), 0.42);
}

TEST(TelemetryHistogram, OverflowSamplesClampToObservedMax)
{
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("test.overflow");
    // Far beyond the last default bound (100 s): lands in the
    // overflow bucket, whose upper edge is the observed max.
    histogram.record(1e6);
    const Histogram::Snapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.buckets.back(), 1u);
    EXPECT_DOUBLE_EQ(snap.p50(), 1e6);
    EXPECT_DOUBLE_EQ(snap.p99(), 1e6);
}

TEST(TelemetryHistogram, PercentilesAreOrdered)
{
    MetricsRegistry registry;
    Histogram &histogram = registry.histogram("test.ordered");
    // Long-tailed latencies across several decades.
    for (int i = 1; i <= 1000; ++i)
        histogram.record(1e-4 * i);
    histogram.record(5.0);
    histogram.record(500.0); // overflow
    const Histogram::Snapshot snap = histogram.snapshot();
    const double p50 = snap.p50();
    const double p90 = snap.p90();
    const double p99 = snap.p99();
    EXPECT_LE(snap.min, p50);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_LE(p99, snap.max);
    EXPECT_GT(p50, 0.0);
}

TEST(TelemetryHistogram, InvalidBoundsPanic)
{
    const double unsorted[] = {1.0, 1.0};
    EXPECT_THROW(Histogram{std::span<const double>(unsorted)},
                 PanicError);
    EXPECT_THROW(Histogram{std::span<const double>()}, PanicError);
}

// --------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------

TEST(TelemetryRegistry, HandlesAreStableAndSurviveReset)
{
    MetricsRegistry registry;
    Counter &counter = registry.counter("stable.counter");
    Gauge &gauge = registry.gauge("stable.gauge");
    Histogram &histogram = registry.histogram("stable.histogram");
    counter.add(5);
    gauge.set(9);
    histogram.record(0.1);

    EXPECT_EQ(&registry.counter("stable.counter"), &counter);
    EXPECT_EQ(&registry.gauge("stable.gauge"), &gauge);
    EXPECT_EQ(&registry.histogram("stable.histogram"), &histogram);

    registry.reset();
    // Same handles, zeroed in place.
    EXPECT_EQ(counter.get(), 0u);
    EXPECT_EQ(gauge.get(), 0);
    EXPECT_EQ(histogram.snapshot().count, 0u);
    EXPECT_EQ(&registry.counter("stable.counter"), &counter);
}

TEST(TelemetryRegistry, MetricsJsonIsWellFormedAndSorted)
{
    MetricsRegistry registry;
    registry.counter("b.second").add(2);
    registry.counter("a.first").add(1);
    registry.gauge("depth").set(-3);
    registry.histogram("lat").record(0.5);
    const std::string json = registry.metricsJson();
    EXPECT_TRUE(MiniJson::valid(json)) << json;
    EXPECT_LT(json.find("\"a.first\":1"),
              json.find("\"b.second\":2"));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"depth\":-3"), std::string::npos);
    for (const char *field :
         {"\"count\":", "\"mean\":", "\"p50\":", "\"p90\":",
          "\"p99\":", "\"min\":", "\"max\":"})
        EXPECT_NE(json.find(field), std::string::npos) << field;
}

// --------------------------------------------------------------------
// Trace recorder and spans
// --------------------------------------------------------------------

TEST(TelemetryTrace, DisabledSpansRecordNothing)
{
    TraceRecorder &recorder = TraceRecorder::global();
    recorder.setEnabled(false);
    recorder.clear();
    {
        TraceSpan span("invisible");
        span.arg("k", std::uint64_t{1});
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(recorder.eventCount(), 0u);
}

TEST(TelemetryTrace, ChromeTraceJsonRoundTrips)
{
    TraceRecorder &recorder = TraceRecorder::global();
    recorder.clear();
    recorder.setEnabled(true);
    {
        TraceSpan outer("outer \"span\"");
        outer.arg("text", "line\nbreak \"quoted\"");
        outer.arg("count", std::uint64_t{42});
        outer.arg("delta", std::int64_t{-5});
        outer.arg("ratio", 0.25);
        outer.arg("flag", true);
        TraceSpan inner("inner");
        EXPECT_TRUE(inner.active());
    }
    recorder.setEnabled(false);
    EXPECT_EQ(recorder.eventCount(), 2u);

    const std::string json = recorder.chromeTraceJson();
    EXPECT_TRUE(MiniJson::valid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Escaped name and args survive the export intact.
    EXPECT_NE(json.find("outer \\\"span\\\""), std::string::npos);
    EXPECT_NE(json.find("line\\nbreak \\\"quoted\\\""),
              std::string::npos);
    EXPECT_NE(json.find("\"count\":42"), std::string::npos);
    EXPECT_NE(json.find("\"delta\":-5"), std::string::npos);
    EXPECT_NE(json.find("\"flag\":true"), std::string::npos);
    for (const char *field : {"\"name\":", "\"cat\":", "\"ph\":\"X\"",
                              "\"ts\":", "\"dur\":", "\"pid\":",
                              "\"tid\":"})
        EXPECT_NE(json.find(field), std::string::npos) << field;
    recorder.clear();
}

TEST(TelemetryTrace, EnablingMidRunOnlyAffectsNewSpans)
{
    TraceRecorder &recorder = TraceRecorder::global();
    recorder.setEnabled(false);
    recorder.clear();
    TraceSpan before("constructed-while-disabled");
    recorder.setEnabled(true);
    {
        TraceSpan after("constructed-while-enabled");
    }
    recorder.setEnabled(false);
    // `before` was inert at construction and stays inert.
    EXPECT_FALSE(before.active());
    EXPECT_EQ(recorder.eventCount(), 1u);
    recorder.clear();
}

TEST(TelemetryTrace, PoolThreadsGetDistinctThreadIds)
{
    TraceRecorder &recorder = TraceRecorder::global();
    recorder.clear();
    recorder.setEnabled(true);
    ThreadPool pool(4);
    std::vector<std::uint32_t> ids(64);
    pool.forEach(ids.size(), [&](std::size_t i) {
        ids[i] = recorder.currentThreadId();
        TraceSpan span("worker");
    });
    recorder.setEnabled(false);
    EXPECT_EQ(recorder.eventCount(), ids.size());
    for (const std::uint32_t id : ids)
        EXPECT_LT(id, 64u); // dense small ids, not hashes
    recorder.clear();
}

// --------------------------------------------------------------------
// Zero-allocation regression
// --------------------------------------------------------------------

TEST(TelemetryOverhead, DisabledInstrumentationDoesNotAllocate)
{
    // Pay all registration costs up front.
    TraceRecorder &recorder = TraceRecorder::global();
    recorder.setEnabled(false);
    MetricsRegistry registry;
    Counter &counter = registry.counter("overhead.counter");
    Gauge &gauge = registry.gauge("overhead.gauge");
    Histogram &histogram = registry.histogram("overhead.histogram");

    const std::size_t before =
        allocationCount.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i) {
        TraceSpan span("hot-path");
        span.arg("i", std::uint64_t(i));
        span.arg("label", "text");
        counter.add();
        gauge.set(i);
        histogram.record(0.001 * i);
    }
    const std::size_t after =
        allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
}

} // namespace
} // namespace fermihedral::telemetry
