#!/usr/bin/env python3
"""Fail on dead relative links or anchors in the repo's markdown.

Usage: check_docs_links.py [FILE ...]   (default: README.md docs/*.md)

Checks every inline markdown link `[text](target)` outside fenced
code blocks:
  - external targets (http/https/mailto) are skipped — CI must not
    depend on the network;
  - relative targets must resolve to an existing file (relative to
    the linking file's directory);
  - `#anchor` fragments — same-file or `other.md#anchor` — must
    match a heading in the target file, using GitHub's slugging
    (lowercase, punctuation dropped, spaces to hyphens, `-N`
    suffixes for duplicates).

This is what keeps docs/PROTOCOL.md, docs/OPERATIONS.md,
docs/ARCHITECTURE.md and the README pointing at each other's real
sections as they evolve.
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_fences(text):
    """Blank out fenced code blocks, preserving line count."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return out


def slugify(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, hyphens."""
    # Inline code/emphasis markers disappear from the slug.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(lines):
    seen = {}
    anchors = set()
    for line in lines:
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def main(argv):
    paths = argv[1:] or ["README.md"] + sorted(glob.glob("docs/*.md"))
    files = {}
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            files[path] = strip_fences(handle.read())

    def anchors_for(path):
        if path not in files:
            with open(path, encoding="utf-8") as handle:
                files[path] = strip_fences(handle.read())
        return anchors_of(files[path])

    errors = []
    checked = 0
    for path, lines in sorted(files.items()):
        base = os.path.dirname(path)
        for lineno, line in enumerate(lines, 1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                    continue  # http:, https:, mailto:, ...
                checked += 1
                where = f"{path}:{lineno}"
                dest, _, fragment = target.partition("#")
                dest_path = (os.path.normpath(os.path.join(base, dest))
                             if dest else path)
                if not os.path.exists(dest_path):
                    errors.append(
                        f"{where}: dead link {target!r} "
                        f"({dest_path} does not exist)")
                    continue
                if fragment and dest_path.endswith(".md"):
                    if fragment not in anchors_for(dest_path):
                        errors.append(
                            f"{where}: dead anchor {target!r} "
                            f"(no heading slugs to "
                            f"#{fragment} in {dest_path})")
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        raise SystemExit(f"{len(errors)} dead link(s)")
    print(f"docs links OK ({checked} relative links "
          f"across {len(paths)} files)")


if __name__ == "__main__":
    main(sys.argv)
