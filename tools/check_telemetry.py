#!/usr/bin/env python3
"""Sanity-check telemetry artifacts produced by --metrics-json / --trace.

Usage: check_telemetry.py [--require NAME[=VALUE][,NAME[=VALUE]...]]
       FILE [FILE ...]

Each file is detected by shape: a Chrome trace document (top-level
"traceEvents") or a metrics document (top-level "counters" /
"gauges" / "histograms"). The check asserts the schema the repo's
consumers (Perfetto, the artifact diffing) rely on: required keys
present, timestamps/durations non-negative, and histogram
percentiles ordered min <= p50 <= p90 <= p99 <= max.

--require lists counter names (comma-separated, repeatable) that
must be present in every metrics document checked — the CI
fault-injection job uses it to prove the shed/cancel/coalesce
counters actually moved through the registry. A NAME=VALUE item
additionally pins the counter to an exact value — the daemon-smoke
job uses `service.cache.misses=0` to prove a warm-started daemon
computed nothing.
"""

import json
import sys

TRACE_EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
HISTOGRAM_KEYS = {"count", "sum", "mean", "min", "max",
                  "p50", "p90", "p99"}


def fail(path, message):
    raise SystemExit(f"{path}: {message}")


def check_trace(path, doc):
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, "traceEvents is not a list")
    for i, event in enumerate(events):
        missing = TRACE_EVENT_KEYS - event.keys()
        if missing:
            fail(path, f"event {i} missing keys {sorted(missing)}")
        if event["ph"] != "X":
            fail(path, f"event {i}: expected complete ('X') events")
        if event["ts"] < 0 or event["dur"] < 0:
            fail(path, f"event {i}: negative ts/dur")
        if "args" in event and not isinstance(event["args"], dict):
            fail(path, f"event {i}: args is not an object")
    print(f"{path}: trace OK ({len(events)} events)")


def check_metrics(path, doc, required):
    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(path, f"missing section {section!r}")
        if not isinstance(doc[section], dict):
            fail(path, f"section {section!r} is not an object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(path, f"counter {name!r}: bad value {value!r}")
    missing = sorted({name for name, _ in required}
                     - doc["counters"].keys())
    if missing:
        fail(path, f"required counters missing: {missing}")
    for name, expected in required:
        if expected is None:
            continue
        actual = doc["counters"][name]
        if actual != expected:
            fail(path, f"counter {name!r}: expected {expected}, "
                       f"got {actual}")
    for name, hist in doc["histograms"].items():
        missing = HISTOGRAM_KEYS - hist.keys()
        if missing:
            fail(path,
                 f"histogram {name!r} missing {sorted(missing)}")
        if hist["count"] > 0:
            ordered = (hist["min"] <= hist["p50"] <= hist["p90"]
                       <= hist["p99"] <= hist["max"])
            if not ordered:
                fail(path,
                     f"histogram {name!r}: percentiles out of "
                     f"order: {hist}")
    print(f"{path}: metrics OK "
          f"({len(doc['counters'])} counters, "
          f"{len(doc['histograms'])} histograms)")


def parse_requirement(item):
    """'name' -> (name, None); 'name=3' -> (name, 3)."""
    if "=" not in item:
        return (item, None)
    name, _, value = item.partition("=")
    try:
        return (name, int(value))
    except ValueError:
        raise SystemExit(
            f"--require {item!r}: value must be an integer")


def main(argv):
    required = []
    paths = []
    args = iter(argv[1:])
    for arg in args:
        if arg == "--require":
            value = next(args, None)
            if value is None:
                raise SystemExit("--require needs a counter list")
            required.extend(
                parse_requirement(name)
                for name in value.split(",") if name)
        elif arg.startswith("--require="):
            required.extend(
                parse_requirement(name)
                for name in
                arg.split("=", 1)[1].split(",") if name)
        else:
            paths.append(arg)
    if not paths:
        raise SystemExit(__doc__)
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        if "traceEvents" in doc:
            check_trace(path, doc)
        else:
            check_metrics(path, doc, required)


if __name__ == "__main__":
    main(sys.argv)
