/**
 * @file
 * fermihedral_client: command-line client for fermihedrald.
 * Four modes, picked by flags:
 *  - single request (default): compile --model with --strategy and
 *    budgets, print the outcome line.
 *  - --batch <file>: pipeline every spec in the file (one
 *    warm-spec item per line, '#' comments) over one connection
 *    and print outcomes as the daemon completes them.
 *  - --stress <spec>: expand a warm-spec sweep, run it --rounds
 *    times sequentially (round 1 cold, later rounds warm), report
 *    client-side latency percentiles and the daemon's metrics.
 *  - --metrics / --ping: observability and liveness probes.
 *
 * Exit status: 0 when every request ended Ok (or the probe
 * succeeded), 1 otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "api/serialize.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/timer.h"
#include "net/client.h"

using namespace fermihedral;

namespace {

net::EncodingClient
connect(const std::string &unix_path, const std::string &tcp_host,
        std::uint16_t tcp_port)
{
    if (!unix_path.empty() && !tcp_host.empty())
        fatal("pass either --unix or --tcp-host, not both");
    if (!unix_path.empty())
        return net::EncodingClient::overUnix(unix_path);
    if (!tcp_host.empty())
        return net::EncodingClient::overTcp(tcp_host, tcp_port);
    fatal("no daemon address: pass --unix <path> or "
          "--tcp-host <addr> [--tcp-port <port>]");
}

/** Render one finished request as a stable, grep-friendly line. */
void
printReply(const net::CompileReply &reply, double seconds)
{
    std::printf("request=%llu status=%s",
                static_cast<unsigned long long>(reply.requestId),
                api::resultStatusName(reply.status));
    if (!reply.resultText.empty()) {
        if (const auto result =
                api::tryParseResult(reply.resultText)) {
            std::printf(" cost=%zu baseline=%zu optimal=%d "
                        "qubits=%zu",
                        result->cost, result->baselineCost,
                        result->provedOptimal ? 1 : 0,
                        result->encoding.numQubits());
        } else {
            std::printf(" result=unparseable");
        }
    }
    std::printf(" ms=%.2f", seconds * 1e3);
    if (!reply.message.empty())
        std::printf(" message=\"%s\"", reply.message.c_str());
    std::printf("\n");
}

std::vector<api::RequestSpec>
readBatchFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot read batch file '", path, "'");
    std::vector<api::RequestSpec> specs;
    std::string line;
    while (std::getline(file, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        // Skip blank (or comment-only) lines.
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        for (const api::RequestSpec &spec :
             api::expandWarmSpec(line))
            specs.push_back(spec);
    }
    if (specs.empty())
        fatal("batch file '", path, "' names no requests");
    return specs;
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t index = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(p * double(sorted.size())));
    return sorted[index];
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("fermihedral_client: talk to a running "
                  "fermihedrald (wire protocol: "
                  "docs/PROTOCOL.md).");
    const auto *unix_path = flags.addString(
        "unix", "", "daemon unix-domain socket path");
    const auto *tcp_host = flags.addString(
        "tcp-host", "", "daemon TCP address (numeric IPv4)");
    const auto *tcp_port =
        flags.addInt("tcp-port", 7411, "daemon TCP port");
    const auto *model = flags.addString(
        "model", "modes:3",
        "model spec to compile (modes:N, h2, hubbard:LxW, "
        "hubbard1d:S, syk:N[:seed])");
    const auto *strategy = flags.addString(
        "strategy", "sat", "encoding strategy name");
    const auto *step_timeout = flags.addDouble(
        "step-timeout", 15.0, "per-SAT-call budget (s)");
    const auto *total_timeout = flags.addDouble(
        "total-timeout", 45.0, "whole-search budget (s)");
    const auto *deadline = flags.addDouble(
        "deadline", 0.0,
        "end-to-end deadline propagated to the daemon (s, "
        "0 = none)");
    const auto *batch = flags.addString(
        "batch", "",
        "pipeline every spec in this file over one connection");
    const auto *stress = flags.addString(
        "stress", "",
        "expand this warm-spec sweep and run it --rounds times");
    const auto *rounds = flags.addInt(
        "rounds", 2,
        "stress rounds (round 1 is cold, later rounds warm)");
    const auto *metrics_only = flags.addBool(
        "metrics", false,
        "print the daemon's metrics JSON document and exit");
    const auto *metrics_out = flags.addString(
        "metrics-out", "",
        "also write the daemon's metrics JSON to this file");
    const auto *ping = flags.addBool(
        "ping", false, "liveness probe: PING, expect PONG");
    if (!flags.parse(argc, argv))
        return 0;

    net::EncodingClient client =
        connect(*unix_path, *tcp_host,
                static_cast<std::uint16_t>(*tcp_port));

    const auto dumpMetrics = [&](bool to_stdout) {
        const std::string json = client.metrics();
        if (to_stdout)
            std::printf("%s\n", json.c_str());
        if (!metrics_out->empty()) {
            std::ofstream out(*metrics_out,
                              std::ios::binary | std::ios::trunc);
            if (!out)
                fatal("cannot write '", *metrics_out, "'");
            out << json << '\n';
            inform("wrote daemon metrics to ", *metrics_out);
        }
    };

    if (*ping) {
        client.sendPing(1, "fermihedral");
        const auto pong = client.readMessage();
        if (!pong || pong->type != net::MessageType::Pong ||
            pong->payload != "fermihedral")
            fatal("ping failed: no matching PONG");
        std::printf("pong from '%s' (protocol v%u)\n",
                    client.banner().c_str(), client.version());
        return 0;
    }
    if (*metrics_only) {
        dumpMetrics(true);
        return 0;
    }

    bool all_ok = true;

    if (!stress->empty()) {
        // Stress mode: the same sweep every round, so round 1
        // populates the store and later rounds must be pure cache
        // traffic (CI asserts computes do not move on warm runs).
        auto specs = api::expandWarmSpec(*stress);
        for (api::RequestSpec &spec : specs) {
            spec.stepTimeoutSeconds = *step_timeout;
            spec.totalTimeoutSeconds = *total_timeout;
            spec.deadlineSeconds = *deadline;
        }
        std::vector<double> latencies;
        std::uint64_t id = 0;
        std::size_t ok = 0, total = 0;
        for (std::int64_t round = 1; round <= *rounds; ++round) {
            Timer round_timer;
            for (const api::RequestSpec &spec : specs) {
                Timer timer;
                const net::CompileReply reply =
                    client.compile(++id, spec);
                latencies.push_back(timer.seconds());
                ++total;
                if (reply.status == api::ResultStatus::Ok)
                    ++ok;
                else
                    all_ok = false;
            }
            std::printf("round=%lld requests=%zu seconds=%.3f\n",
                        static_cast<long long>(round),
                        specs.size(), round_timer.seconds());
        }
        std::sort(latencies.begin(), latencies.end());
        std::printf(
            "stress requests=%zu ok=%zu p50_ms=%.2f p90_ms=%.2f "
            "p99_ms=%.2f max_ms=%.2f\n",
            total, ok, percentile(latencies, 0.50) * 1e3,
            percentile(latencies, 0.90) * 1e3,
            percentile(latencies, 0.99) * 1e3,
            latencies.empty() ? 0.0 : latencies.back() * 1e3);
        // The daemon-side view (service.latency_seconds
        // percentiles, cache counters) comes from metricsJson().
        dumpMetrics(true);
        return all_ok ? 0 : 1;
    }

    if (!batch->empty()) {
        const auto specs = readBatchFile(*batch);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            api::RequestSpec spec = specs[i];
            spec.stepTimeoutSeconds = *step_timeout;
            spec.totalTimeoutSeconds = *total_timeout;
            spec.deadlineSeconds = *deadline;
            client.sendCompile(i + 1, spec);
        }
        Timer timer;
        // Responses arrive in completion order — print them as
        // they land; the request= field ties them back.
        for (std::size_t done = 0; done < specs.size(); ++done) {
            const auto frame = client.readMessage();
            if (!frame)
                fatal("daemon closed with ",
                      specs.size() - done, " request(s) open");
            if (frame->type == net::MessageType::Error)
                fatal("daemon protocol error: ", frame->payload);
            const net::CompileReply reply =
                net::EncodingClient::decodeReply(*frame);
            if (reply.status != api::ResultStatus::Ok)
                all_ok = false;
            printReply(reply, timer.seconds());
        }
        if (!metrics_out->empty())
            dumpMetrics(false);
        return all_ok ? 0 : 1;
    }

    api::RequestSpec spec;
    spec.problem = *model;
    spec.strategy = *strategy;
    spec.stepTimeoutSeconds = *step_timeout;
    spec.totalTimeoutSeconds = *total_timeout;
    spec.deadlineSeconds = *deadline;
    Timer timer;
    const net::CompileReply reply = client.compile(1, spec);
    printReply(reply, timer.seconds());
    if (!metrics_out->empty())
        dumpMetrics(false);
    return reply.status == api::ResultStatus::Ok ? 0 : 1;
}
