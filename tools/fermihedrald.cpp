/**
 * @file
 * fermihedrald: the encoding-service daemon. Serves the
 * CompilerService over the docs/PROTOCOL.md frame protocol on a
 * unix-domain socket and/or TCP, backed by the persistent sharded
 * encoding store, with --warm precompiling an encoding library
 * before the first client connects and --verify-store running an
 * offline CRC audit. docs/OPERATIONS.md is the runbook.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "common/flags.h"
#include "common/logging.h"
#include "common/telemetry_flags.h"
#include "net/server.h"

using namespace fermihedral;

namespace {

net::EncodingServer *activeServer = nullptr;

void
handleSignal(int)
{
    // stop() is an atomic store + a pipe write: signal-safe.
    if (activeServer)
        activeServer->stop();
}

/** "0600"-style octal mode string -> mode bits. */
unsigned
parseMode(const std::string &text)
{
    if (text.empty() || text.size() > 4)
        fatal("malformed socket mode '", text,
              "' (expected octal such as 0600 or 660)");
    unsigned mode = 0;
    for (const char c : text) {
        if (c < '0' || c > '7')
            fatal("malformed socket mode '", text,
                  "' (expected octal such as 0600 or 660)");
        mode = mode * 8 + static_cast<unsigned>(c - '0');
    }
    return mode;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("fermihedrald: the encoding-service daemon "
                  "(wire protocol: docs/PROTOCOL.md, runbook: "
                  "docs/OPERATIONS.md).");
    const auto *unix_path = flags.addString(
        "unix", "fermihedrald.sock",
        "unix-domain socket path (empty disables the listener)");
    const auto *unix_mode = flags.addString(
        "unix-mode", "0600",
        "octal file mode applied to the unix socket");
    const auto *tcp_host = flags.addString(
        "tcp-host", "",
        "numeric IPv4 address for the TCP listener (empty "
        "disables TCP)");
    const auto *tcp_port = flags.addInt(
        "tcp-port", 7411, "TCP port (0 picks an ephemeral port)");
    const auto *store = flags.addString(
        "store", "",
        "directory of the persistent encoding store (empty runs "
        "without persistence)");
    const auto *store_shards = flags.addInt(
        "store-shards", 16,
        "hashed subdirectories fanning out the store (0 = flat "
        "legacy layout)");
    const auto *threads = flags.addInt(
        "threads", 1,
        "service worker threads (0 = hardware concurrency)");
    const auto *cache_capacity = flags.addInt(
        "cache-capacity", 256,
        "in-memory LRU capacity in entries (0 disables it)");
    const auto *max_queue_depth = flags.addInt(
        "max-queue-depth", 64,
        "admission control: queued requests before shedding "
        "(0 = unbounded)");
    const auto *banner = flags.addString(
        "banner", "fermihedrald",
        "server identification echoed in WELCOME frames");
    const auto *warm = flags.addString(
        "warm", "",
        "precompile an encoding library before serving, e.g. "
        "'hubbard:1x2..2x2;syk:4..6@sat' (see docs/OPERATIONS.md)");
    const auto *warm_step_timeout = flags.addDouble(
        "warm-step-timeout", 15.0,
        "per-SAT-call budget for warm compiles (s)");
    const auto *warm_total_timeout = flags.addDouble(
        "warm-total-timeout", 45.0,
        "whole-search budget for each warm compile (s)");
    const auto *warm_only = flags.addBool(
        "warm-only", false,
        "exit after the warm sweep instead of serving");
    const auto *verify_store = flags.addBool(
        "verify-store", false,
        "CRC-audit every entry under --store, report, and exit "
        "(exit 1 when corrupted entries exist)");
    const auto tflags = telemetry::TelemetryFlags::add(flags);
    if (!flags.parse(argc, argv))
        return 0;
    tflags.arm();

    if (*verify_store) {
        if (store->empty())
            fatal("--verify-store needs --store");
        const api::StoreVerification report =
            api::verifyEncodingStore(*store);
        std::printf("store=%s entries=%zu corrupted=%zu "
                    "bytes=%zu\n",
                    store->c_str(), report.entries,
                    report.corrupted, report.bytes);
        return report.corrupted == 0 ? 0 : 1;
    }

    net::ServerOptions options;
    options.unixPath = *unix_path;
    options.unixMode = parseMode(*unix_mode);
    options.tcpHost = *tcp_host;
    options.tcpPort = static_cast<std::uint16_t>(*tcp_port);
    options.banner = *banner;
    options.service.threads = static_cast<std::size_t>(*threads);
    options.service.cacheCapacity =
        static_cast<std::size_t>(*cache_capacity);
    options.service.diskCachePath = *store;
    options.service.diskCacheShards =
        static_cast<std::size_t>(*store_shards);
    options.service.maxQueueDepth =
        static_cast<std::size_t>(*max_queue_depth);
    if (*warm_only && warm->empty())
        fatal("--warm-only needs --warm");

    net::EncodingServer server(options);
    activeServer = &server;
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);

    if (!warm->empty()) {
        auto specs = api::expandWarmSpec(*warm);
        for (api::RequestSpec &spec : specs) {
            spec.stepTimeoutSeconds = *warm_step_timeout;
            spec.totalTimeoutSeconds = *warm_total_timeout;
        }
        inform("warming ", specs.size(), " spec(s)...");
        const net::WarmReport report = server.warm(specs);
        inform("warm done: ", report.ok, "/", report.requests,
               " ok (", report.fromCache, " from cache) in ",
               report.seconds, " s");
    }

    if (!*warm_only) {
        if (!options.unixPath.empty())
            inform("listening on unix socket ", options.unixPath,
                   " (mode ", *unix_mode, ")");
        if (!options.tcpHost.empty())
            inform("listening on tcp ", options.tcpHost, ":",
                   server.boundTcpPort());
        server.run();
        inform("shutting down");
    }

    activeServer = nullptr;
    std::printf("%s\n",
                server.service().cacheStatsJson().c_str());
    tflags.report();
    return 0;
}
